//! Conjugate-gradient solver on the staggered normal operator — the
//! production context of the Dslash kernel.
//!
//! MILC's `su3_rhmd_hisq` (Section I) spends most of its time solving
//! `(m^2 - D^2) x = b` on one parity with CG; every CG iteration applies
//! Dslash twice.  The staggered Dslash built here is anti-Hermitian
//! (backward links are negated adjoints), so the even-parity normal
//! operator
//!
//! ```text
//! A = m^2 I - D_eo D_oe
//! ```
//!
//! is Hermitian positive definite and plain CG applies.  The operator is
//! evaluated with the rayon-parallel CPU Dslash; the solver is what the
//! `cg_solver` example runs.

use crate::obs;
use crate::operator::recommended_config;
use crate::parallel_cpu::dslash_par_into;
use crate::problem::DslashProblem;
use crate::staticcheck::estimate_config;
use crate::strategy::KernelConfig;
use crate::tune::{TuneError, Tuner};
use crate::validate::compare_to_reference;
use gpu_sim::{
    estimate_stream, DeviceSpec, DeviceState, Launcher, QueueMode, RegimeCalibration,
    StreamEstimate,
};
use milc_complex::ComplexField;
use milc_lattice::{ColorVector, GaugeField, Lattice, NeighborTable, Parity, QuarkField};

/// Result of a CG solve.
#[derive(Clone, Debug)]
pub struct CgSolution<C> {
    /// The solution on the even checkerboard.
    pub x: Vec<ColorVector<C>>,
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual `||b - A x|| / ||b||`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// Anything that can play the normal operator `A` in CG — the CPU
/// [`NormalOperator`] or the device-backed, autotuned
/// [`DeviceNormalOperator`].
pub trait NormalOp<C: ComplexField> {
    /// `out = A x`.
    fn apply_op(&mut self, x: &[ColorVector<C>], out: &mut [ColorVector<C>]);
}

/// Apply the even-parity normal operator `A x = m^2 x - D_eo (D_oe x)`.
///
/// `x` is an even-checkerboard vector; scratch fields avoid per-call
/// allocation.
pub struct NormalOperator<'a, C: ComplexField> {
    gauge: &'a GaugeField<C>,
    nt: NeighborTable,
    mass: f64,
    full: QuarkField<C>,
    odd: Vec<ColorVector<C>>,
    even: Vec<ColorVector<C>>,
}

impl<'a, C: ComplexField> NormalOperator<'a, C> {
    /// Build the operator for a gauge field and quark mass.
    ///
    /// # Panics
    /// Panics if `mass` is not positive (the normal operator would not
    /// be positive definite).
    pub fn new(gauge: &'a GaugeField<C>, mass: f64) -> Self {
        assert!(mass > 0.0, "quark mass must be positive for CG");
        let lattice = gauge.lattice();
        Self {
            gauge,
            nt: NeighborTable::build(lattice),
            mass,
            full: QuarkField::zeros(lattice),
            odd: vec![ColorVector::zero(); lattice.half_volume()],
            even: vec![ColorVector::zero(); lattice.half_volume()],
        }
    }

    /// The quark mass.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// `out = A x`.
    pub fn apply(&mut self, x: &[ColorVector<C>], out: &mut [ColorVector<C>]) {
        let lattice = self.gauge.lattice().clone();
        assert_eq!(x.len(), lattice.half_volume(), "operand length mismatch");
        assert_eq!(out.len(), lattice.half_volume(), "output length mismatch");

        // Scatter x onto the even sites of a full-lattice field.
        for s in 0..lattice.volume() {
            *self.full.site_mut(s) = ColorVector::zero();
        }
        for (cb, v) in x.iter().enumerate() {
            let s = lattice.site_of_checkerboard(cb, Parity::Even);
            *self.full.site_mut(s) = *v;
        }
        // odd = D_oe x.
        dslash_par_into(self.gauge, &self.full, &self.nt, Parity::Odd, &mut self.odd);
        // Scatter odd onto the odd sites.
        for s in 0..lattice.volume() {
            *self.full.site_mut(s) = ColorVector::zero();
        }
        for (cb, v) in self.odd.iter().enumerate() {
            let s = lattice.site_of_checkerboard(cb, Parity::Odd);
            *self.full.site_mut(s) = *v;
        }
        // even = D_eo odd.
        dslash_par_into(
            self.gauge,
            &self.full,
            &self.nt,
            Parity::Even,
            &mut self.even,
        );

        let m2 = self.mass * self.mass;
        for cb in 0..lattice.half_volume() {
            out[cb] = x[cb].scale(m2) - self.even[cb];
        }
    }
}

impl<C: ComplexField> NormalOp<C> for NormalOperator<'_, C> {
    fn apply_op(&mut self, x: &[ColorVector<C>], out: &mut [ColorVector<C>]) {
        self.apply(x, out);
    }
}

/// The normal operator evaluated on the *simulated device* at a local
/// size chosen by the autotuner — the production shape of the paper's
/// kernel: MILC's CG spends its time in exactly this `D_oe` / `D_eo`
/// pair, and QUDA runs it at autotuned launch parameters.
///
/// Two packed problems share the gauge field: one targets the odd
/// parity (`D_oe x`), one the even (`D_eo y`).  Their device caches
/// stay warm across CG iterations (each problem keeps a
/// [`DeviceState`]), and only the source vector is repacked per
/// application ([`DslashProblem::set_source`]).  The first application
/// of each problem validates against the CPU reference; later ones
/// skip the host-side check, like [`SimulatedDslash`](crate::operator::SimulatedDslash).
pub struct DeviceNormalOperator<'d, C: ComplexField> {
    mass: f64,
    cfg: KernelConfig,
    local_size: u32,
    tuned_from_cache: bool,
    lattice: Lattice,
    /// Parity-odd problem: computes `D_oe x`.
    oe: DslashProblem<C>,
    /// Parity-even problem: computes `D_eo y`.
    eo: DslashProblem<C>,
    state_oe: DeviceState,
    state_eo: DeviceState,
    device: &'d DeviceSpec,
    launcher: Launcher<'d>,
    full: QuarkField<C>,
    validated: bool,
    applications: u64,
}

impl<'d, C: ComplexField> DeviceNormalOperator<'d, C> {
    /// Build the operator with the local size the tuner picks for
    /// `cfg` on this lattice/device (cache hit ⇒ zero sweep launches).
    ///
    /// # Panics
    /// Panics if `mass` is not positive.
    pub fn new_tuned(
        gauge: &GaugeField<C>,
        mass: f64,
        cfg: KernelConfig,
        device: &'d DeviceSpec,
        tuner: &mut Tuner,
    ) -> Result<Self, TuneError> {
        assert!(mass > 0.0, "quark mass must be positive for CG");
        let lattice = gauge.lattice().clone();
        // A deterministic nonzero source makes the tuning sweep's
        // validation meaningful; every apply replaces it anyway.
        let probe = QuarkField::random(&lattice, 0x7E57_0CA5);
        let mut oe = DslashProblem::from_fields(gauge.clone(), probe.clone(), Parity::Odd);
        let eo = DslashProblem::from_fields(gauge.clone(), probe, Parity::Even);

        // One tune decision serves both parities: the key is (device,
        // dims, kernel label), and both problems share all three.
        let decision = tuner.tune(&mut oe, cfg, device, QueueMode::OutOfOrder)?;
        // CG iterations launch at the tuned layout, not just the tuned
        // size — the cached entry carries the winning layout's tag.
        let cfg = match crate::kernels::common::SharedLayout::from_tag(&decision.entry.layout) {
            Some(layout) => cfg.with_layout(layout),
            None => cfg,
        };
        Ok(Self {
            mass,
            cfg,
            local_size: decision.entry.local_size,
            tuned_from_cache: decision.from_cache,
            lattice,
            oe,
            eo,
            state_oe: DeviceState::new(device),
            state_eo: DeviceState::new(device),
            device,
            launcher: Launcher::new(device),
            full: QuarkField::zeros(gauge.lattice()),
            validated: false,
            applications: 0,
        })
    }

    /// The tuned work-group size CG iterations launch at.
    pub fn local_size(&self) -> u32 {
        self.local_size
    }

    /// Whether the tuning decision came from the cache.
    pub fn tuned_from_cache(&self) -> bool {
        self.tuned_from_cache
    }

    /// Device Dslash applications so far (two per operator apply).
    pub fn applications(&self) -> u64 {
        self.applications
    }

    /// The configuration in use.
    pub fn config(&self) -> KernelConfig {
        self.cfg
    }

    /// Scatter a checkerboard vector onto one parity of `self.full`,
    /// zeroing the other parity.
    fn scatter(&mut self, v: &[ColorVector<C>], parity: Parity) {
        for s in 0..self.lattice.volume() {
            *self.full.site_mut(s) = ColorVector::zero();
        }
        for (cb, x) in v.iter().enumerate() {
            *self
                .full
                .site_mut(self.lattice.site_of_checkerboard(cb, parity)) = *x;
        }
    }

    /// Run one parity's Dslash at the tuned local size.  The launch
    /// geometry was certified during tuning, so a failure here is a
    /// simulator bug, not a recoverable condition.
    fn launch(
        problem: &mut DslashProblem<C>,
        state: &mut DeviceState,
        launcher: &Launcher<'d>,
        device: &DeviceSpec,
        cfg: KernelConfig,
        local_size: u32,
        validate: bool,
    ) -> Vec<ColorVector<C>> {
        problem.zero_output();
        let range = problem.launch_range(cfg, local_size);
        let kernel = problem.make_kernel(cfg, range.num_groups());
        let label = cfg.label();
        let span = obs::span_on(&label, "dslash");
        let report = launcher
            .launch_with_state(kernel.as_ref(), range, problem.memory(), state)
            .expect("tuned launch geometry was certified by the sweep");
        obs::record_launch(&span, &label, &report, device, 0.0);
        drop(span);
        let out = problem.read_output();
        if validate {
            let tol = problem.validation_tolerance();
            let err = compare_to_reference(&out, problem.reference());
            assert!(
                err.rel < tol,
                "device Dslash diverged from the CPU reference: {err:?} (tolerance {tol:e})"
            );
        }
        out
    }
}

impl<C: ComplexField> NormalOp<C> for DeviceNormalOperator<'_, C> {
    fn apply_op(&mut self, x: &[ColorVector<C>], out: &mut [ColorVector<C>]) {
        let hv = self.lattice.half_volume();
        assert_eq!(x.len(), hv, "operand length mismatch");
        assert_eq!(out.len(), hv, "output length mismatch");
        let validate = !self.validated;

        // odd = D_oe x.
        self.scatter(x, Parity::Even);
        let src = self.full.clone();
        self.oe.set_source(&src);
        let odd = Self::launch(
            &mut self.oe,
            &mut self.state_oe,
            &self.launcher,
            self.device,
            self.cfg,
            self.local_size,
            validate,
        );

        // even = D_eo odd.
        self.scatter(&odd, Parity::Odd);
        let src = self.full.clone();
        self.eo.set_source(&src);
        let even = Self::launch(
            &mut self.eo,
            &mut self.state_eo,
            &self.launcher,
            self.device,
            self.cfg,
            self.local_size,
            validate,
        );

        self.validated = true;
        self.applications += 2;
        let m2 = self.mass * self.mass;
        for cb in 0..hv {
            out[cb] = x[cb].scale(m2) - even[cb];
        }
    }
}

/// Hermitian inner product of two checkerboard vectors (real part; the
/// imaginary part vanishes for the arguments CG uses).
fn dot<C: ComplexField>(a: &[ColorVector<C>], b: &[ColorVector<C>]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x.dot(y).re()).sum()
}

fn norm<C: ComplexField>(a: &[ColorVector<C>]) -> f64 {
    a.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
}

/// Solve `A x = b` with plain CG against any [`NormalOp`].
pub fn solve_with<C: ComplexField, Op: NormalOp<C> + ?Sized>(
    op: &mut Op,
    b: &[ColorVector<C>],
    tol: f64,
    max_iter: usize,
) -> CgSolution<C> {
    let n = b.len();
    let bnorm = norm(b).max(1e-300);

    let solve_span = obs::span_on("cg", "cg.solve");
    solve_span.attr("n", n as u64);
    solve_span.attr("tol", tol);
    solve_span.attr("max_iter", max_iter as u64);

    let mut x = vec![ColorVector::<C>::zero(); n];
    let mut r = b.to_vec();
    let mut p = b.to_vec();
    let mut ap = vec![ColorVector::<C>::zero(); n];
    let mut rr = dot(&r, &r);

    let mut iterations = 0;
    while iterations < max_iter && rr.sqrt() / bnorm > tol {
        let iter_span = obs::span_on("cg", "cg.iter");
        let rel = rr.sqrt() / bnorm;
        iter_span.attr("k", iterations as u64);
        iter_span.attr("residual", rel);
        obs::metric_gauge("cg_residual", &[], rel);
        obs::counter_sample("cg residual", rel);
        op.apply_op(&p, &mut ap);
        let pap = dot(&p, &ap);
        assert!(
            pap > 0.0,
            "normal operator lost positive definiteness (pAp = {pap})"
        );
        let alpha = rr / pap;
        for cb in 0..n {
            x[cb] += p[cb].scale(alpha);
            r[cb] -= ap[cb].scale(alpha);
        }
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        for cb in 0..n {
            p[cb] = r[cb] + p[cb].scale(beta);
        }
        rr = rr_new;
        iterations += 1;
        drop(iter_span);
    }

    // True residual (not the recurrence's): b - A x.
    {
        let _check = obs::span_on("cg", "cg.true_residual");
        op.apply_op(&x, &mut ap);
    }
    let mut true_r = 0.0f64;
    for cb in 0..n {
        true_r += (b[cb] - ap[cb]).norm_sqr();
    }
    let relative_residual = true_r.sqrt() / bnorm;
    solve_span.attr("iterations", iterations as u64);
    solve_span.attr("relative_residual", relative_residual);
    obs::metric_gauge("cg_residual", &[], relative_residual);
    obs::metric_inc("cg_iterations_total", &[], iterations as u64);
    CgSolution {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= tol * 10.0,
    }
}

/// Solve `A x = b` with plain CG on the CPU operator.
pub fn solve<C: ComplexField>(
    gauge: &GaugeField<C>,
    b: &[ColorVector<C>],
    mass: f64,
    tol: f64,
    max_iter: usize,
) -> CgSolution<C> {
    let mut op = NormalOperator::new(gauge, mass);
    solve_with(&mut op, b, tol, max_iter)
}

/// Statically estimate the launch stream of a tuned CG solve — the
/// [`DeviceNormalOperator`]'s exact launch mix, *without running it*:
/// each operator application launches `D_oe` then `D_eo`, each on its
/// own persistent [`DeviceState`], so per parity the first launch runs
/// cold and the remaining `applies − 1` run warm.  `applies` counts
/// operator applications (CG iterations plus the final true-residual
/// check); the stream then holds `2 × applies` launches of which 2 are
/// cold.  Durations compose per-kernel [`gpu_sim::CostEstimate`]s via
/// [`gpu_sim::estimate_stream`] under the shared
/// [`RegimeCalibration::committed`] table —
/// [`StreamEstimate::calibrated_us`] is directly comparable to the
/// solve's summed measured launch durations.
///
/// `cfg` and `local_size` should be the tuned decision (layout applied);
/// counters are value-independent, so the estimate holds for any source
/// vector.
///
/// # Errors
/// The cost model's reason when either parity's launch cannot be
/// estimated.
pub fn estimate_solve_stream<C: ComplexField>(
    gauge: &GaugeField<C>,
    cfg: KernelConfig,
    local_size: u32,
    device: &DeviceSpec,
    applies: u64,
) -> Result<StreamEstimate, String> {
    let lattice = gauge.lattice();
    // Any deterministic source works: the estimated counters do not
    // depend on the values flowing through the kernel.
    let probe = QuarkField::random(lattice, 0x7E57_0CA5);
    let oe = DslashProblem::from_fields(gauge.clone(), probe.clone(), Parity::Odd);
    let eo = DslashProblem::from_fields(gauge.clone(), probe, Parity::Even);
    let est_oe = estimate_config(&oe, cfg, local_size, device)?;
    let est_eo = estimate_config(&eo, cfg, local_size, device)?;
    Ok(estimate_stream(
        &[&est_oe, &est_eo],
        applies,
        &RegimeCalibration::committed(),
    ))
}

/// A CG solution produced on the simulated device at a tuned local
/// size, with the tuning provenance attached.
#[derive(Clone, Debug)]
pub struct TunedCgSolution<C> {
    /// The solution.
    pub solution: CgSolution<C>,
    /// The tuned work-group size every iteration launched at.
    pub local_size: u32,
    /// Whether the tuning decision was a cache hit (no sweep ran).
    pub tuned_from_cache: bool,
    /// Device Dslash applications the solve performed.
    pub dslash_applications: u64,
}

/// Solve `A x = b` with CG, applying the operator on the simulated
/// device at the local size the autotuner picks for the paper's
/// recommended configuration (3LP-1 k-major).  With a warm tune cache
/// this performs zero sweep launches before iterating.
pub fn solve_tuned<C: ComplexField>(
    gauge: &GaugeField<C>,
    b: &[ColorVector<C>],
    mass: f64,
    tol: f64,
    max_iter: usize,
    device: &DeviceSpec,
    tuner: &mut Tuner,
) -> Result<TunedCgSolution<C>, TuneError> {
    let mut op = DeviceNormalOperator::new_tuned(gauge, mass, recommended_config(), device, tuner)?;
    let solution = solve_with(&mut op, b, tol, max_iter);
    Ok(TunedCgSolution {
        solution,
        local_size: op.local_size(),
        tuned_from_cache: op.tuned_from_cache(),
        dslash_applications: op.applications(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use milc_complex::DoubleComplex as Z;
    use milc_lattice::Lattice;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_even_vector(lattice: &Lattice, seed: u64) -> Vec<ColorVector<Z>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..lattice.half_volume())
            .map(|_| {
                ColorVector::new(
                    Z::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                    Z::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                    Z::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                )
            })
            .collect()
    }

    #[test]
    fn normal_operator_is_hermitian_positive_definite() {
        let lattice = Lattice::hypercubic(4);
        let gauge = GaugeField::<Z>::random(&lattice, 42);
        let mut op = NormalOperator::new(&gauge, 0.5);
        let x = random_even_vector(&lattice, 1);
        let y = random_even_vector(&lattice, 2);
        let mut ax = vec![ColorVector::zero(); x.len()];
        let mut ay = vec![ColorVector::zero(); y.len()];
        op.apply(&x, &mut ax);
        op.apply(&y, &mut ay);
        // <y, Ax> == <Ay, x> (Hermitian).
        let lhs: f64 = y.iter().zip(&ax).map(|(a, b)| a.dot(b).re()).sum();
        let rhs: f64 = ay.iter().zip(&x).map(|(a, b)| a.dot(b).re()).sum();
        assert!(
            (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
        // <x, Ax> > 0 (positive definite).
        let xax: f64 = x.iter().zip(&ax).map(|(a, b)| a.dot(b).re()).sum();
        assert!(xax > 0.0);
    }

    #[test]
    fn cg_converges_and_residual_is_small() {
        let lattice = Lattice::hypercubic(4);
        let gauge = GaugeField::<Z>::random(&lattice, 7);
        let b = random_even_vector(&lattice, 3);
        let sol = solve(&gauge, &b, 1.0, 1e-10, 500);
        assert!(sol.converged, "residual {}", sol.relative_residual);
        assert!(sol.relative_residual < 1e-9);
        assert!(sol.iterations > 0 && sol.iterations < 500);
    }

    #[test]
    fn heavier_mass_converges_faster() {
        let lattice = Lattice::hypercubic(4);
        let gauge = GaugeField::<Z>::random(&lattice, 9);
        let b = random_even_vector(&lattice, 4);
        let light = solve(&gauge, &b, 0.1, 1e-8, 2000);
        let heavy = solve(&gauge, &b, 2.0, 1e-8, 2000);
        assert!(light.converged && heavy.converged);
        assert!(
            heavy.iterations < light.iterations,
            "heavy {} vs light {}",
            heavy.iterations,
            light.iterations
        );
    }

    #[test]
    fn solution_solves_the_system() {
        // Verify A x ~= b by direct application.
        let lattice = Lattice::hypercubic(4);
        let gauge = GaugeField::<Z>::random(&lattice, 11);
        let b = random_even_vector(&lattice, 5);
        let sol = solve(&gauge, &b, 0.8, 1e-11, 1000);
        let mut op = NormalOperator::new(&gauge, 0.8);
        let mut ax = vec![ColorVector::zero(); b.len()];
        op.apply(&sol.x, &mut ax);
        for cb in 0..b.len() {
            assert!((b[cb] - ax[cb]).norm_sqr() < 1e-16);
        }
    }

    #[test]
    fn device_operator_matches_cpu_operator() {
        let lattice = Lattice::hypercubic(4);
        let gauge = GaugeField::<Z>::random(&lattice, 21);
        let device = DeviceSpec::test_small();
        let mut tuner = Tuner::in_memory();
        let mut dev_op =
            DeviceNormalOperator::new_tuned(&gauge, 0.7, recommended_config(), &device, &mut tuner)
                .unwrap();
        let mut cpu_op = NormalOperator::new(&gauge, 0.7);
        let x = random_even_vector(&lattice, 30);
        let mut dev_out = vec![ColorVector::zero(); x.len()];
        let mut cpu_out = vec![ColorVector::zero(); x.len()];
        dev_op.apply_op(&x, &mut dev_out);
        cpu_op.apply_op(&x, &mut cpu_out);
        for cb in 0..x.len() {
            let d = (dev_out[cb] - cpu_out[cb]).norm_sqr().sqrt();
            let scale = cpu_out[cb].norm_sqr().sqrt().max(1.0);
            assert!(d / scale < 1e-10, "site {cb}: {d}");
        }
        assert_eq!(dev_op.applications(), 2);
    }

    #[test]
    fn tuned_solve_converges_and_reuses_the_cache() {
        let lattice = Lattice::hypercubic(4);
        let gauge = GaugeField::<Z>::random(&lattice, 23);
        let b = random_even_vector(&lattice, 31);
        let device = DeviceSpec::test_small();
        let mut tuner = Tuner::in_memory();

        let first = solve_tuned(&gauge, &b, 1.0, 1e-8, 200, &device, &mut tuner).unwrap();
        assert!(
            first.solution.converged,
            "{}",
            first.solution.relative_residual
        );
        assert!(!first.tuned_from_cache, "cold tuner must sweep");
        assert!(first.dslash_applications >= 2);

        // Same lattice/device/config: the second solve hits the cache.
        let second = solve_tuned(&gauge, &b, 1.0, 1e-8, 200, &device, &mut tuner).unwrap();
        assert!(second.tuned_from_cache, "warm tuner must not sweep");
        assert_eq!(second.local_size, first.local_size);
        assert_eq!(second.solution.iterations, first.solution.iterations);

        // The tuned solution solves the same system the CPU solve does.
        let cpu = solve(&gauge, &b, 1.0, 1e-8, 200);
        for cb in 0..b.len() {
            let d = (first.solution.x[cb] - cpu.x[cb]).norm_sqr().sqrt();
            assert!(d < 1e-6, "site {cb}: {d}");
        }
    }

    #[test]
    #[should_panic(expected = "mass must be positive")]
    fn zero_mass_rejected() {
        let lattice = Lattice::hypercubic(2);
        let gauge = GaugeField::<Z>::random(&lattice, 1);
        let _ = NormalOperator::new(&gauge, 0.0);
    }

    #[test]
    #[should_panic(expected = "operand length mismatch")]
    fn wrong_length_rejected() {
        let lattice = Lattice::hypercubic(2);
        let gauge = GaugeField::<Z>::random(&lattice, 1);
        let mut op = NormalOperator::new(&gauge, 1.0);
        let x = vec![ColorVector::<Z>::zero(); 3];
        let mut out = vec![ColorVector::<Z>::zero(); 3];
        op.apply(&x, &mut out);
    }
}
