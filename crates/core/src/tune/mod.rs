//! The autotuning subsystem: QUDA-style per-kernel tuning with a
//! persistent tune cache.
//!
//! The paper's central result is that Dslash throughput hinges on the
//! launch configuration — strategy, index order, local size under the
//! Section III divisibility constraints — and QUDA (the reference
//! implementation the paper benchmarks against) deals with that in
//! production by autotuning each kernel once and caching the winner on
//! disk.  This module is that subsystem for the simulated device:
//!
//! * [`sweep`] measures — every legal local size of a configuration is
//!   lint-gated, launched warm, validated, and the fastest wins;
//! * [`cache`] remembers — winners persist as versioned JSON (default
//!   `results/tunecache.json`) keyed by device-spec hash, lattice dims,
//!   kernel label and sanitizer mode, so a later run (or a later
//!   process) skips the sweep entirely;
//! * [`Tuner`] fronts both — [`Tuner::tune`] consults the cache first,
//!   sweeps only on a miss, and counts hits/misses so callers can prove
//!   a warm run did zero sweep launches.
//!
//! Downstream, [`run_config_tuned`](crate::runner::run_config_tuned)
//! and [`solver::solve_tuned`](crate::solver::solve_tuned) take their
//! local size from here instead of a hard-coded constant, and the
//! `milc-bench` `tune` bin materializes the cache for the paper's
//! twelve Table I configurations.

pub mod cache;
pub mod json;
pub mod sweep;

pub use cache::{
    device_spec_hash, LoadOutcome, TuneCache, TuneEntry, TuneKey, TuneRegime, TUNECACHE_VERSION,
};
pub use sweep::{
    candidate_local_sizes, static_rank_order, sweep_config, sweep_config_with_mode,
    sweep_layouts_with_mode, CandidateOutcome, CandidatePoint, Reject, SweepError, SweepMode,
    SweepOutcome,
};

use crate::kernels::common::SharedLayout;
use crate::problem::DslashProblem;
use crate::strategy::KernelConfig;
use gpu_sim::{DeviceSpec, QueueMode};
use milc_complex::ComplexField;
use std::path::{Path, PathBuf};

/// Where [`Tuner::default_path`] points: the repo's results directory,
/// next to the figures the tuned numbers correspond to.
pub const DEFAULT_CACHE_PATH: &str = "results/tunecache.json";

/// One tuning decision, cache-hit or freshly swept.
#[derive(Clone, Debug)]
pub struct TuneDecision {
    /// The cache entry (inserted on a miss, returned as-is on a hit).
    pub entry: TuneEntry,
    /// Whether the decision came from the cache (no launches performed).
    pub from_cache: bool,
    /// The full sweep record when one ran; `None` on a cache hit.
    pub sweep: Option<SweepOutcome>,
}

/// Tuning failure.
#[derive(Debug)]
pub enum TuneError {
    /// The sweep could not produce a winner.
    Sweep(SweepError),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Sweep(e) => write!(f, "autotune failed: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<SweepError> for TuneError {
    fn from(e: SweepError) -> Self {
        TuneError::Sweep(e)
    }
}

/// The autotuner: a tune cache plus hit/miss accounting.
///
/// ```
/// use gpu_sim::{DeviceSpec, QueueMode};
/// use milc_complex::DoubleComplex;
/// use milc_dslash::tune::Tuner;
/// use milc_dslash::{DslashProblem, IndexOrder, KernelConfig, Strategy};
///
/// let device = DeviceSpec::test_small();
/// let mut problem = DslashProblem::<DoubleComplex>::random(4, 42);
/// let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
///
/// let mut tuner = Tuner::in_memory();
/// let cold = tuner
///     .tune(&mut problem, cfg, &device, QueueMode::InOrder)
///     .unwrap();
/// assert!(!cold.from_cache);
/// let warm = tuner
///     .tune(&mut problem, cfg, &device, QueueMode::InOrder)
///     .unwrap();
/// assert!(warm.from_cache);
/// assert_eq!(warm.entry.local_size, cold.entry.local_size);
/// assert_eq!((tuner.hits(), tuner.misses()), (1, 1));
/// ```
pub struct Tuner {
    cache: TuneCache,
    path: Option<PathBuf>,
    load_outcome: LoadOutcome,
    hits: u64,
    misses: u64,
}

impl Tuner {
    /// A tuner with an empty, non-persistent cache (tests, one-shots).
    pub fn in_memory() -> Self {
        Self {
            cache: TuneCache::new(),
            path: None,
            load_outcome: LoadOutcome::Fresh,
            hits: 0,
            misses: 0,
        }
    }

    /// A tuner backed by a cache file.  A missing, corrupt or
    /// version-mismatched file degrades to an empty cache — the tuner
    /// then re-sweeps; it never fails to construct and never panics.
    /// Call [`save`](Self::save) to persist new entries.
    pub fn with_cache_file(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let (cache, load_outcome) = TuneCache::load(&path);
        Self {
            cache,
            path: Some(path),
            load_outcome,
            hits: 0,
            misses: 0,
        }
    }

    /// The conventional cache location, `results/tunecache.json`.
    pub fn default_path() -> &'static Path {
        Path::new(DEFAULT_CACHE_PATH)
    }

    /// How the backing file loaded (always `Fresh` for `in_memory`).
    pub fn load_outcome(&self) -> &LoadOutcome {
        &self.load_outcome
    }

    /// Cache hits so far (tune calls that performed zero launches).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (tune calls that swept).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The underlying cache (read-only).
    pub fn cache(&self) -> &TuneCache {
        &self.cache
    }

    /// The key [`tune`](Self::tune) will use for a problem/config pair.
    /// The local-memory layout is *not* part of the key: the tuner owns
    /// that dimension (it sweeps layouts alongside local sizes and
    /// records the winning layout in the entry), so the key is the
    /// configuration's base (flat-layout) label.
    pub fn key_for<C: ComplexField>(
        problem: &DslashProblem<C>,
        cfg: KernelConfig,
        device: &DeviceSpec,
    ) -> TuneKey {
        // Unsanitized: the tuner times real launches (sanitized runs
        // execute in a different mode and are keyed separately if ever
        // cached).
        let base = cfg.with_layout(SharedLayout::Flat);
        TuneKey::new(device, problem.lattice(), &base.label(), false)
    }

    /// Tune one configuration: return the cached winner if the key
    /// hits, otherwise sweep all (local size × layout) candidates
    /// exhaustively, record the winner, and return it.  On a hit no
    /// launch is performed at all.
    pub fn tune<C: ComplexField>(
        &mut self,
        problem: &mut DslashProblem<C>,
        cfg: KernelConfig,
        device: &DeviceSpec,
        queue_mode: QueueMode,
    ) -> Result<TuneDecision, TuneError> {
        self.tune_with_mode(problem, cfg, device, queue_mode, SweepMode::Exhaustive)
    }

    /// [`tune`](Self::tune) with an explicit [`SweepMode`]: a ranked
    /// sweep statically prunes to the top-K predicted candidates before
    /// timing anything.  Cache semantics are identical — the mode only
    /// governs how a cache *miss* spends launches, and the cache key
    /// does not include it (a ranked winner is a winner).
    pub fn tune_with_mode<C: ComplexField>(
        &mut self,
        problem: &mut DslashProblem<C>,
        cfg: KernelConfig,
        device: &DeviceSpec,
        queue_mode: QueueMode,
        mode: SweepMode,
    ) -> Result<TuneDecision, TuneError> {
        let key = Self::key_for(problem, cfg, device);
        if let Some(entry) = self.cache.lookup(&key) {
            self.hits += 1;
            crate::obs::metric_inc("tune_cache_hits_total", &[("config", &cfg.label())], 1);
            return Ok(TuneDecision {
                entry: entry.clone(),
                from_cache: true,
                sweep: None,
            });
        }
        self.misses += 1;
        crate::obs::metric_inc("tune_cache_misses_total", &[("config", &cfg.label())], 1);
        let sweep = sweep_layouts_with_mode(problem, cfg, device, queue_mode, mode)?;
        let entry = TuneEntry {
            key,
            local_size: sweep.winner.local_size,
            layout: sweep.winner.layout.tag(),
            duration_us: sweep.winner.duration_us,
            gflops: sweep.winner.gflops,
            candidates_ok: (sweep.timed().count() + sweep.predicted().count()) as u32,
            candidates_rejected: sweep.rejected() as u32,
        };
        self.cache.insert(entry.clone());
        Ok(TuneDecision {
            entry,
            from_cache: false,
            sweep: Some(sweep),
        })
    }

    /// Persist the cache to the backing file (no-op for `in_memory`).
    pub fn save(&self) -> std::io::Result<()> {
        match &self.path {
            Some(p) => self.cache.save(p),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{IndexOrder, Strategy};
    use milc_complex::DoubleComplex as Z;

    fn cfg3lp1() -> KernelConfig {
        KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor)
    }

    #[test]
    fn miss_then_hit_with_counters() {
        let device = DeviceSpec::test_small();
        let mut p = DslashProblem::<Z>::random(4, 5);
        let mut t = Tuner::in_memory();
        let cold = t
            .tune(&mut p, cfg3lp1(), &device, QueueMode::InOrder)
            .unwrap();
        assert!(!cold.from_cache);
        assert!(cold.sweep.is_some());
        let warm = t
            .tune(&mut p, cfg3lp1(), &device, QueueMode::InOrder)
            .unwrap();
        assert!(warm.from_cache);
        assert!(warm.sweep.is_none());
        assert_eq!(warm.entry, cold.entry);
        assert_eq!((t.hits(), t.misses()), (1, 1));
    }

    #[test]
    fn different_device_or_config_misses() {
        let small = DeviceSpec::test_small();
        let a100 = DeviceSpec::a100();
        let mut p = DslashProblem::<Z>::random(4, 6);
        let mut t = Tuner::in_memory();
        t.tune(&mut p, cfg3lp1(), &small, QueueMode::InOrder)
            .unwrap();
        // Same config, different device: must sweep again.
        t.tune(&mut p, cfg3lp1(), &a100, QueueMode::InOrder)
            .unwrap();
        // Different order, same device: must sweep again.
        let cfg_i = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::IMajor);
        t.tune(&mut p, cfg_i, &small, QueueMode::InOrder).unwrap();
        assert_eq!((t.hits(), t.misses()), (0, 3));
    }

    #[test]
    fn persists_across_tuner_instances() {
        let dir = std::env::temp_dir().join("milc-tuner-persist-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("tunecache.json");
        let device = DeviceSpec::test_small();
        let mut p = DslashProblem::<Z>::random(4, 7);

        let mut t1 = Tuner::with_cache_file(&path);
        assert_eq!(t1.load_outcome(), &LoadOutcome::Fresh);
        let cold = t1
            .tune(&mut p, cfg3lp1(), &device, QueueMode::InOrder)
            .unwrap();
        t1.save().unwrap();

        let mut t2 = Tuner::with_cache_file(&path);
        assert_eq!(t2.load_outcome(), &LoadOutcome::Loaded(1));
        let warm = t2
            .tune(&mut p, cfg3lp1(), &device, QueueMode::InOrder)
            .unwrap();
        assert!(warm.from_cache, "second process must hit the saved cache");
        assert_eq!(warm.entry.local_size, cold.entry.local_size);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_file_degrades_to_sweep() {
        let dir = std::env::temp_dir().join("milc-tuner-corrupt-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tunecache.json");
        std::fs::write(&path, b"\x00\xffnot json at all{{{").unwrap();
        let device = DeviceSpec::test_small();
        let mut p = DslashProblem::<Z>::random(4, 8);
        let mut t = Tuner::with_cache_file(&path);
        assert_eq!(t.load_outcome(), &LoadOutcome::Corrupt);
        let d = t
            .tune(&mut p, cfg3lp1(), &device, QueueMode::InOrder)
            .unwrap();
        assert!(!d.from_cache, "corrupt cache must fall back to a sweep");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tuned_entry_records_the_winning_layout() {
        let device = DeviceSpec::test_small();
        let mut p = DslashProblem::<Z>::random(4, 12);
        let mut t = Tuner::in_memory();
        let d = t
            .tune(&mut p, cfg3lp1(), &device, QueueMode::InOrder)
            .unwrap();
        // 3LP-1's dense layout bank-conflicts; the tuner must pick (and
        // record) a conflict-free remedy the runner can re-apply.
        let layout = SharedLayout::from_tag(&d.entry.layout).expect("entry layout tag parses");
        assert_ne!(layout, SharedLayout::Flat, "tag: {}", d.entry.layout);
        // The cache key is layout-blind: asking again with the winning
        // layout pinned in the config must *hit* the same entry.
        let pinned = cfg3lp1().with_layout(layout);
        let warm = t.tune(&mut p, pinned, &device, QueueMode::InOrder).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.entry, d.entry);
    }

    #[test]
    fn all_rejected_sweep_is_an_error() {
        let device = DeviceSpec::test_small();
        let mut p = DslashProblem::<Z>::random(2, 9);
        let mut t = Tuner::in_memory();
        let cfg = KernelConfig::new(Strategy::OneLp, IndexOrder::KMajor);
        let err = t.tune(&mut p, cfg, &device, QueueMode::InOrder);
        assert!(matches!(
            err,
            Err(TuneError::Sweep(SweepError::NoCandidates { .. }))
        ));
    }
}
