//! Minimal JSON reader/writer for the tune cache.
//!
//! The workspace builds offline against vendored dependency shims, so
//! there is no serde; the tune-cache format (DESIGN §5) needs only the
//! subset implemented here: objects, arrays, strings, numbers, booleans
//! and null.  The parser is total — malformed input of any kind is an
//! [`Err`], never a panic — because a corrupted on-disk cache must
//! degrade to a full re-sweep (see [`super::cache::TuneCache::load`]).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; the cache stores u64 hashes as
    /// hex *strings* so no integer exceeds f64's exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset and a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.what)
    }
}

impl Json {
    /// Look up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (must be exactly
    /// representable).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation (stable key order — objects
    /// keep insertion order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad1 = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad1);
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            what: "trailing garbage after document",
        });
    }
    Ok(value)
}

/// Nesting limit: a corrupted file must not blow the host stack.
const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError {
            at: *pos,
            what: "nesting too deep",
        });
    }
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(JsonError {
            at: *pos,
            what: "unexpected end of input",
        });
    };
    match c {
        b'{' => parse_obj(b, pos, depth),
        b'[' => parse_arr(b, pos, depth),
        b'"' => parse_string(b, pos).map(Json::Str),
        b't' | b'f' | b'n' => parse_keyword(b, pos),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => Err(JsonError {
            at: *pos,
            what: "unexpected character",
        }),
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8, what: &'static str) -> Result<(), JsonError> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { at: *pos, what })
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(JsonError {
                at: *pos,
                what: "expected object key string",
            });
        }
        let key = parse_string(b, pos)?;
        expect(b, pos, b':', "expected ':' after object key")?;
        let value = parse_value(b, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    what: "expected ',' or '}' in object",
                })
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    what: "expected ',' or ']' in array",
                })
            }
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // opening quote
    let mut s = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(JsonError {
                at: *pos,
                what: "unterminated string",
            });
        };
        *pos += 1;
        match c {
            b'"' => return Ok(s),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err(JsonError {
                        at: *pos,
                        what: "unterminated escape",
                    });
                };
                *pos += 1;
                match e {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'b' => s.push('\u{8}'),
                    b'f' => s.push('\u{c}'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError {
                                at: *pos,
                                what: "bad \\u escape",
                            })?;
                        *pos += 4;
                        // Surrogates are rejected rather than paired; the
                        // cache writer never emits them.
                        s.push(char::from_u32(hex).ok_or(JsonError {
                            at: *pos,
                            what: "\\u escape is not a scalar value",
                        })?);
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            what: "unknown escape",
                        })
                    }
                }
            }
            c if c < 0x20 => {
                return Err(JsonError {
                    at: *pos,
                    what: "raw control character in string",
                })
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at c.
                let start = *pos - 1;
                let len = utf8_len(c).ok_or(JsonError {
                    at: start,
                    what: "invalid UTF-8 lead byte",
                })?;
                let slice = b.get(start..start + len).ok_or(JsonError {
                    at: start,
                    what: "truncated UTF-8 sequence",
                })?;
                let decoded = std::str::from_utf8(slice).map_err(|_| JsonError {
                    at: start,
                    what: "invalid UTF-8 sequence",
                })?;
                s.push_str(decoded);
                *pos = start + len;
            }
        }
    }
}

fn utf8_len(lead: u8) -> Option<usize> {
    match lead {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    for (word, value) in [
        ("true", Json::Bool(true)),
        ("false", Json::Bool(false)),
        ("null", Json::Null),
    ] {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            return Ok(value);
        }
    }
    Err(JsonError {
        at: *pos,
        what: "unknown keyword",
    })
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or(JsonError {
            at: start,
            what: "malformed number",
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Json::Obj(vec![
            ("version".into(), Json::Num(1.0)),
            (
                "entries".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("kernel".into(), Json::Str("3LP-1 k-major".into())),
                    ("local_size".into(), Json::Num(96.0)),
                    ("duration_us".into(), Json::Num(875.125)),
                    ("sanitized".into(), Json::Bool(false)),
                    ("none".into(), Json::Null),
                ])]),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "nul",
            "[1] trailing",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\u12\"",
            "-",
            "1e999x",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Infinite numbers are rejected (cache stores finite durations).
        assert!(parse("1e999").is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": 3, \"b\": [true, \"x\"], \"c\": 1.5}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("c").and_then(Json::as_u64), None);
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(1.5));
        let arr = v.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }
}
