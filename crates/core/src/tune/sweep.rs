//! The measurement side of the tuner: run one kernel configuration over
//! every legal local size and pick the fastest.
//!
//! Candidates are exactly [`KernelConfig::legal_local_sizes`] — the
//! paper's Fig. 6 sweep.  Each candidate is first checked against the
//! static launch linter ([`gpu_sim::lint_launch`]); the tuner must never
//! time, let alone select, a configuration `sancheck` would flag.
//! Surviving candidates run through [`run_config_warm`] (warm caches and
//! an out-of-order queue, the conditions that produced
//! `results/fig6.csv`), are validated against the CPU reference, and the
//! minimum modelled duration wins (ties break toward the smaller local
//! size, which wastes fewer tail resources).
//!
//! Unlike the minimal `quda_ref::autotune`, nothing is silently
//! dropped: every rejected candidate is recorded with its reason, and a
//! sweep in which *no* candidate survives is an error, not a fabricated
//! winner.

use crate::flops::theoretical_flops;
use crate::kernels::common::SharedLayout;
use crate::obs;
use crate::problem::DslashProblem;
use crate::runner::{run_config_warm, run_config_warm_on_state};
use crate::staticcheck::{rank_candidates, staticcheck_kernel};
use crate::strategy::KernelConfig;
use gpu_sim::{
    lint_launch, DeviceSpec, DeviceState, QueueMode, Regime, RegimeCalibration, SimError,
    StaticCheckConfig,
};
use milc_complex::ComplexField;

/// How a sweep spends its timed launches.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SweepMode {
    /// Time every candidate that passes the static gates (the Fig. 6
    /// sweep; the default).
    Exhaustive,
    /// Statically rank the surviving candidates by the cost model's
    /// predicted duration and time only the top `time_top_k`; the
    /// pruned tail is recorded as [`Reject::StaticRank`].  Candidates
    /// the cost model cannot estimate are always timed — a ranked sweep
    /// must never prune what it cannot rank.
    Ranked {
        /// How many top-ranked candidates to time (at least 1).
        time_top_k: usize,
    },
    /// Measurement-free: pick the winner from the static ranking alone
    /// — *zero* timed launches (`sweep_launches == 0`).  The winner is
    /// recorded as [`CandidateOutcome::Predicted`] with its
    /// warm-calibrated duration (the serving regime the tuner's timed
    /// modes also report); every other candidate is rejected with
    /// [`Reject::StaticRank`] or, when the cost model cannot estimate
    /// it, [`Reject::Inestimable`] — a mode that never launches cannot
    /// fall back to timing what it cannot rank.
    Static,
}

/// Why a candidate local size was not timed / not eligible to win.
#[derive(Clone, Debug)]
pub enum Reject {
    /// The static launch linter produced findings (messages recorded).
    Lint(Vec<String>),
    /// The static access analyzer proved a race or bounds violation
    /// over the whole ND-range (messages recorded).
    Static(Vec<String>),
    /// A ranked sweep pruned the candidate: the cost model predicted it
    /// too slow to be worth timing.
    StaticRank {
        /// 1-based predicted rank among the sweep's candidates.
        rank: usize,
        /// The cost model's predicted duration, µs.
        predicted_us: f64,
    },
    /// A measurement-free sweep could not rank the candidate: the cost
    /// model failed to estimate it (reason recorded), and
    /// [`SweepMode::Static`] has no timing fallback.
    Inestimable(String),
    /// The simulator refused or aborted the launch.
    Launch(SimError),
    /// The launch ran but its output diverged from the CPU reference.
    Validation {
        /// Observed max relative error.
        rel: f64,
        /// The problem's tolerance it exceeded.
        tol: f64,
    },
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::Lint(msgs) => write!(f, "lint: {}", msgs.join("; ")),
            Reject::Static(msgs) => write!(f, "staticcheck: {}", msgs.join("; ")),
            Reject::StaticRank { rank, predicted_us } => write!(
                f,
                "static-rank: predicted rank #{rank} ({predicted_us:.1} µs), not timed"
            ),
            Reject::Inestimable(why) => write!(f, "inestimable: {why}"),
            Reject::Launch(e) => write!(f, "launch: {e}"),
            Reject::Validation { rel, tol } => {
                write!(f, "validation: rel error {rel:.3e} > tol {tol:.3e}")
            }
        }
    }
}

/// One successfully timed candidate.
#[derive(Clone, Debug)]
pub struct CandidatePoint {
    /// Local size tried.
    pub local_size: u32,
    /// Local-memory layout tried.
    pub layout: SharedLayout,
    /// Modelled kernel duration, µs.
    pub duration_us: f64,
    /// GFLOP/s the way the paper computes it (wall time incl. queue
    /// overhead).
    pub gflops: f64,
    /// Achieved occupancy, 0..=1.
    pub occupancy: f64,
    /// Scheduling waves of the launch.
    pub waves: f64,
    /// Fraction of the launch spent in the partial tail wave.
    pub tail_fraction: f64,
}

/// One candidate's fate in a sweep.
#[derive(Clone, Debug)]
pub enum CandidateOutcome {
    /// Timed and eligible.
    Timed(CandidatePoint),
    /// Selected without a launch ([`SweepMode::Static`]): the point's
    /// duration is the cost model's warm-calibrated prediction, its
    /// occupancy/waves/tail come from the static occupancy analysis.
    Predicted(CandidatePoint),
    /// Rejected, with the reason.
    Rejected {
        /// Local size that was rejected.
        local_size: u32,
        /// Local-memory layout that was rejected.
        layout: SharedLayout,
        /// Why.
        reason: Reject,
    },
}

impl CandidateOutcome {
    /// The candidate's local size regardless of fate.
    pub fn local_size(&self) -> u32 {
        match self {
            CandidateOutcome::Timed(p) | CandidateOutcome::Predicted(p) => p.local_size,
            CandidateOutcome::Rejected { local_size, .. } => *local_size,
        }
    }

    /// The candidate's local-memory layout regardless of fate.
    pub fn layout(&self) -> SharedLayout {
        match self {
            CandidateOutcome::Timed(p) | CandidateOutcome::Predicted(p) => p.layout,
            CandidateOutcome::Rejected { layout, .. } => *layout,
        }
    }
}

/// A completed sweep: the winner plus the full per-candidate record.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The winning point (minimum duration; ties → smaller local size).
    pub winner: CandidatePoint,
    /// Every candidate, in sweep order.
    pub candidates: Vec<CandidateOutcome>,
    /// Kernel launches the sweep spent (warmup + timed).  An exhaustive
    /// sweep spends two per timed candidate; a ranked sweep warms once
    /// and times top-K back-to-back, so pruned *and* shared-warmup
    /// launches are both avoided; a [`SweepMode::Static`] sweep spends
    /// exactly zero.
    pub sweep_launches: u64,
}

impl SweepOutcome {
    /// Candidates that were timed successfully.
    pub fn timed(&self) -> impl Iterator<Item = &CandidatePoint> {
        self.candidates.iter().filter_map(|c| match c {
            CandidateOutcome::Timed(p) => Some(p),
            _ => None,
        })
    }

    /// Candidates selected without a launch ([`SweepMode::Static`]).
    pub fn predicted(&self) -> impl Iterator<Item = &CandidatePoint> {
        self.candidates.iter().filter_map(|c| match c {
            CandidateOutcome::Predicted(p) => Some(p),
            _ => None,
        })
    }

    /// Number of rejected candidates.
    pub fn rejected(&self) -> usize {
        self.candidates
            .iter()
            .filter(|c| matches!(c, CandidateOutcome::Rejected { .. }))
            .count()
    }
}

/// Sweep failure: no candidate could win.
#[derive(Clone, Debug)]
pub enum SweepError {
    /// The configuration has no legal local size on this lattice at all
    /// (e.g. the global size is smaller than the smallest legal group).
    NoCandidates {
        /// The configuration's label.
        kernel: String,
    },
    /// Candidates existed but every one was rejected; the per-candidate
    /// reasons are preserved.
    AllRejected {
        /// The configuration's label.
        kernel: String,
        /// Every rejected candidate with its reason.
        candidates: Vec<CandidateOutcome>,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::NoCandidates { kernel } => {
                write!(f, "{kernel}: no legal local size to tune over")
            }
            SweepError::AllRejected { kernel, candidates } => {
                write!(
                    f,
                    "{kernel}: all {} candidates rejected (",
                    candidates.len()
                )?;
                for (i, c) in candidates.iter().enumerate() {
                    if let CandidateOutcome::Rejected {
                        local_size,
                        layout,
                        reason,
                    } = c
                    {
                        if i > 0 {
                            write!(f, "; ")?;
                        }
                        write!(f, "{local_size} {}: {reason}", layout.tag())?;
                    }
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// The local sizes the tuner will try for a configuration — the Fig. 6
/// candidate set: multiples of lcm(site block, warp size) that divide
/// the global size, up to the 1024 maximum.
pub fn candidate_local_sizes(cfg: KernelConfig, half_volume: u64) -> Vec<u32> {
    cfg.legal_local_sizes(half_volume)
}

/// The static decision order over `(layout, local size, predicted µs)`
/// triples: ascending predicted duration, ties toward the smaller local
/// size, then toward the layout using less local memory, then by layout
/// tag.  Because no two distinct candidates share all four keys this is
/// a strict total order — the sorted sequence (and hence the
/// [`SweepMode::Static`] winner) is invariant under the enumeration
/// order of the input.
pub fn static_rank_order(cands: &mut [(SharedLayout, u32, f64)]) {
    cands.sort_by(|a, b| {
        a.2.partial_cmp(&b.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
            .then(a.0.required_bytes(a.1).cmp(&b.0.required_bytes(b.1)))
            .then(a.0.tag().cmp(&b.0.tag()))
    });
}

/// Lint one candidate the way `sancheck` would; empty = clean.
fn lint_candidate<C: ComplexField>(
    problem: &DslashProblem<C>,
    cfg: KernelConfig,
    local_size: u32,
    device: &DeviceSpec,
) -> Vec<String> {
    let range = problem.launch_range(cfg, local_size);
    let kernel = problem.make_kernel(cfg, range.num_groups());
    lint_launch(
        device,
        &range,
        &kernel.resources(local_size),
        kernel.num_phases(),
        kernel.local_size_multiple(),
    )
    .into_iter()
    .map(|f| f.detail)
    .collect()
}

/// Prove a candidate race- and bounds-free over the whole ND-range
/// before spending launches timing it.  The lints already ran
/// ([`lint_candidate`]), so only the footprint proofs are requested.
fn static_candidate<C: ComplexField>(
    problem: &DslashProblem<C>,
    cfg: KernelConfig,
    local_size: u32,
    device: &DeviceSpec,
) -> Vec<String> {
    let range = problem.launch_range(cfg, local_size);
    let kernel = problem.make_kernel(cfg, range.num_groups());
    let scfg = StaticCheckConfig {
        lint: false,
        ..StaticCheckConfig::tuner()
    };
    staticcheck_kernel(
        kernel.as_ref(),
        &range,
        device,
        problem.memory(),
        &scfg,
        &cfg.label(),
    )
    .findings
    .into_iter()
    .map(|f| format!("{}: {}", f.kind, f.detail))
    .collect()
}

/// Sweep a configuration over all candidate local sizes on a device
/// ([`SweepMode::Exhaustive`]).
///
/// Measurement conditions match the Fig. 6 harness: warm caches (one
/// untimed warmup launch) and the requested queue semantics.
pub fn sweep_config<C: ComplexField>(
    problem: &mut DslashProblem<C>,
    cfg: KernelConfig,
    device: &DeviceSpec,
    queue_mode: QueueMode,
) -> Result<SweepOutcome, SweepError> {
    sweep_config_with_mode(problem, cfg, device, queue_mode, SweepMode::Exhaustive)
}

/// Sweep a configuration with an explicit [`SweepMode`].
///
/// In [`SweepMode::Ranked`] the candidates that survive the lint and
/// proof gates are ranked by the static cost model's predicted duration
/// and only the top `time_top_k` are launched; the pruned tail is
/// recorded as [`Reject::StaticRank`] with its predicted rank.
/// Candidates the model cannot estimate are timed unconditionally.
///
/// In [`SweepMode::Static`] no launch happens at all: the top-ranked
/// candidate wins outright as [`CandidateOutcome::Predicted`], with its
/// duration taken from the shared [`RegimeCalibration`] table's
/// warm-regime scale.
///
/// The sweep stays on the configuration's own
/// [`shared_layout`](KernelConfig::shared_layout); use
/// [`sweep_layouts_with_mode`] to make the layout a tuned dimension.
pub fn sweep_config_with_mode<C: ComplexField>(
    problem: &mut DslashProblem<C>,
    cfg: KernelConfig,
    device: &DeviceSpec,
    queue_mode: QueueMode,
    mode: SweepMode,
) -> Result<SweepOutcome, SweepError> {
    sweep_layout_list(problem, cfg, &[cfg.shared_layout], device, queue_mode, mode)
}

/// Sweep a configuration over (local size × local-memory layout): every
/// candidate local size is tried under every layout in
/// [`KernelConfig::tunable_layouts`] — the paper's dense layout plus the
/// padded and swizzled bank-conflict remedies — and the fastest
/// *(size, layout)* point wins.  Ties break toward the smaller local
/// size, then toward the layout using less local memory (so `flat` wins
/// a dead heat and a remedy must actually pay for its pad bytes).
///
/// Strategies without local memory degenerate to the plain per-size
/// sweep (their only layout is [`SharedLayout::Flat`]).  In
/// [`SweepMode::Ranked`] the static cost model ranks all *(size,
/// layout)* points jointly — the predicted shared-memory wavefronts
/// price each layout — and only the top `time_top_k` points are timed.
pub fn sweep_layouts_with_mode<C: ComplexField>(
    problem: &mut DslashProblem<C>,
    cfg: KernelConfig,
    device: &DeviceSpec,
    queue_mode: QueueMode,
    mode: SweepMode,
) -> Result<SweepOutcome, SweepError> {
    sweep_layout_list(
        problem,
        cfg,
        &cfg.tunable_layouts(),
        device,
        queue_mode,
        mode,
    )
}

/// The sweep core: one configuration over the cross product of its
/// candidate local sizes and an explicit layout list.
fn sweep_layout_list<C: ComplexField>(
    problem: &mut DslashProblem<C>,
    cfg: KernelConfig,
    layouts: &[SharedLayout],
    device: &DeviceSpec,
    queue_mode: QueueMode,
    mode: SweepMode,
) -> Result<SweepOutcome, SweepError> {
    let hv = problem.lattice().half_volume() as u64;
    let sizes = candidate_local_sizes(cfg, hv);
    if sizes.is_empty() || layouts.is_empty() {
        return Err(SweepError::NoCandidates {
            kernel: cfg.label(),
        });
    }

    let span = obs::span_on("tune", "tune.sweep");
    span.attr("kernel", cfg.label());
    span.attr("candidates", (sizes.len() * layouts.len()) as u64);
    span.attr("layouts", layouts.len() as u64);
    let tol = problem.validation_tolerance();

    // Static gates first: never launch what the linter flags, and
    // never *time* a candidate the access analyzer proves racy or
    // out of bounds over the full ND-range.  Candidates are ordered by
    // (local size, layout local-mem bytes), so the winner fold's strict
    // "<" breaks duration ties toward the smaller size and then toward
    // the cheaper layout.
    let mut gated: Vec<(SharedLayout, u32, Option<Reject>)> =
        Vec::with_capacity(sizes.len() * layouts.len());
    for &ls in &sizes {
        let mut by_bytes = layouts.to_vec();
        by_bytes.sort_by_key(|l| l.required_bytes(ls));
        for layout in by_bytes {
            let lcfg = cfg.with_layout(layout);
            let findings = lint_candidate(problem, lcfg, ls, device);
            if !findings.is_empty() {
                gated.push((layout, ls, Some(Reject::Lint(findings))));
                continue;
            }
            let proofs = static_candidate(problem, lcfg, ls, device);
            if !proofs.is_empty() {
                gated.push((layout, ls, Some(Reject::Static(proofs))));
                continue;
            }
            gated.push((layout, ls, None));
        }
    }

    // Ranked mode: rank the survivors of *all* layouts jointly by the
    // cost model's predicted duration (shared traffic base per layout,
    // per-candidate occupancy — see [`rank_candidates`]; the layout
    // enters through its predicted shared-memory wavefronts and its
    // local-mem occupancy cost) and prune everything past the top-K.
    if let SweepMode::Ranked { time_top_k } = mode {
        let mut estimable: Vec<(SharedLayout, u32, f64)> = Vec::new();
        let mut inestimable = 0usize;
        for &layout in layouts {
            for r in rank_candidates(problem, cfg.with_layout(layout), device) {
                match &r.estimate {
                    Ok(est) => estimable.push((layout, r.local_size, est.duration_us)),
                    Err(_) => inestimable += 1, // stays timed
                }
            }
        }
        static_rank_order(&mut estimable);
        let mut rank = 0usize;
        let k = time_top_k.max(1);
        for (layout, ls, predicted_us) in estimable {
            let Some(slot) = gated
                .iter_mut()
                .find(|(l, c, rej)| *l == layout && *c == ls && rej.is_none())
            else {
                continue; // already rejected by a static gate
            };
            rank += 1;
            if rank > k {
                slot.2 = Some(Reject::StaticRank { rank, predicted_us });
            }
        }
        span.attr("ranked_candidates", rank as u64);
        span.attr("ranked_inestimable", inestimable as u64);
    }

    // Measurement-free mode: the static ranking *is* the decision.
    // Rank every gate-surviving candidate by the cost model's predicted
    // warm duration (the serving regime — tuned kernels run warm after
    // their first application); rank #1 wins as a Predicted point
    // carrying its warm-calibrated duration, the rest are recorded as
    // StaticRank rejects.  Zero launches are spent.
    if mode == SweepMode::Static {
        let cal = RegimeCalibration::committed();
        let mut estimates: Vec<(SharedLayout, u32, f64)> = Vec::new();
        let mut by_candidate: Vec<(SharedLayout, u32, Result<gpu_sim::CostEstimate, String>)> =
            Vec::new();
        for &layout in layouts {
            for r in rank_candidates(problem, cfg.with_layout(layout), device) {
                if let Ok(est) = &r.estimate {
                    estimates.push((layout, r.local_size, est.duration_us));
                }
                by_candidate.push((layout, r.local_size, r.estimate));
            }
        }
        static_rank_order(&mut estimates);
        // Ranks count only gate survivors: a linted-out candidate must
        // not displace the rank numbering of the ones still in play.
        let mut ranks: Vec<(SharedLayout, u32, usize, f64)> = Vec::new();
        for &(layout, ls, predicted_us) in &estimates {
            if gated
                .iter()
                .any(|(l, c, rej)| *l == layout && *c == ls && rej.is_none())
            {
                ranks.push((layout, ls, ranks.len() + 1, predicted_us));
            }
        }
        let flops = theoretical_flops(problem.lattice()) as f64;
        let mut winner: Option<CandidatePoint> = None;
        let mut outcomes = Vec::with_capacity(gated.len());
        for (layout, ls, reject) in gated {
            if let Some(reason) = reject {
                outcomes.push(CandidateOutcome::Rejected {
                    local_size: ls,
                    layout,
                    reason,
                });
                continue;
            }
            let Some(&(_, _, rank, predicted_us)) =
                ranks.iter().find(|(l, c, _, _)| *l == layout && *c == ls)
            else {
                let why = by_candidate
                    .iter()
                    .find_map(|(l, c, e)| {
                        (*l == layout && *c == ls).then(|| match e {
                            Err(why) => why.clone(),
                            Ok(_) => "estimate lost by the ranker".to_string(),
                        })
                    })
                    .unwrap_or_else(|| "cost model produced no estimate".to_string());
                outcomes.push(CandidateOutcome::Rejected {
                    local_size: ls,
                    layout,
                    reason: Reject::Inestimable(why),
                });
                continue;
            };
            if rank == 1 {
                let est = by_candidate
                    .iter()
                    .find_map(|(l, c, e)| (*l == layout && *c == ls).then(|| e.as_ref().ok()))
                    .flatten()
                    .expect("rank #1 came from a successful estimate");
                let duration_us = cal.calibrated_us(est, Regime::Warm);
                let point = CandidatePoint {
                    local_size: ls,
                    layout,
                    duration_us,
                    gflops: flops / duration_us / 1e3,
                    occupancy: est.occupancy.achieved,
                    waves: est.occupancy.waves,
                    tail_fraction: est.occupancy.tail_fraction(),
                };
                winner = Some(point.clone());
                outcomes.push(CandidateOutcome::Predicted(point));
            } else {
                outcomes.push(CandidateOutcome::Rejected {
                    local_size: ls,
                    layout,
                    reason: Reject::StaticRank { rank, predicted_us },
                });
            }
        }
        return match winner {
            Some(winner) => {
                span.attr("winner_local_size", winner.local_size);
                span.attr("winner_layout", winner.layout.tag());
                span.attr("winner_duration_us", winner.duration_us);
                span.attr("sweep_launches", 0u64);
                Ok(SweepOutcome {
                    winner,
                    candidates: outcomes,
                    sweep_launches: 0,
                })
            }
            None => Err(SweepError::AllRejected {
                kernel: cfg.label(),
                candidates: outcomes,
            }),
        };
    }

    // A ranked sweep times its survivors back-to-back on one shared
    // device state: the *global* access stream of a configuration is
    // the same for every local size and every local layout, so each
    // timed launch leaves the caches as warm as a dedicated warmup
    // would, and only the first candidate pays one.
    let mut shared: Option<(DeviceState, bool)> = match mode {
        SweepMode::Ranked { .. } => Some((DeviceState::new(device), false)),
        // Static returned above; Exhaustive warms per candidate.
        SweepMode::Exhaustive | SweepMode::Static => None,
    };
    let mut sweep_launches = 0u64;
    let mut outcomes = Vec::with_capacity(gated.len());
    for (layout, ls, reject) in gated {
        if let Some(reason) = reject {
            outcomes.push(CandidateOutcome::Rejected {
                local_size: ls,
                layout,
                reason,
            });
            continue;
        }
        let lcfg = cfg.with_layout(layout);
        let run = match shared.as_mut() {
            Some((state, warmed)) => {
                let r = run_config_warm_on_state(
                    problem, lcfg, ls, device, queue_mode, state, !*warmed,
                );
                if r.is_ok() {
                    sweep_launches += if *warmed { 1 } else { 2 };
                    *warmed = true;
                } else {
                    sweep_launches += 1;
                }
                r
            }
            None => {
                let r = run_config_warm(problem, lcfg, ls, device, queue_mode);
                sweep_launches += if r.is_ok() { 2 } else { 1 };
                r
            }
        };
        match run {
            Ok(out) => {
                if out.error.rel >= tol {
                    outcomes.push(CandidateOutcome::Rejected {
                        local_size: ls,
                        layout,
                        reason: Reject::Validation {
                            rel: out.error.rel,
                            tol,
                        },
                    });
                } else {
                    outcomes.push(CandidateOutcome::Timed(CandidatePoint {
                        local_size: ls,
                        layout,
                        duration_us: out.report.duration_us,
                        gflops: out.gflops,
                        occupancy: out.report.occupancy.achieved,
                        waves: out.report.waves(),
                        tail_fraction: out.report.tail_fraction(),
                    }));
                }
            }
            Err(e) => outcomes.push(CandidateOutcome::Rejected {
                local_size: ls,
                layout,
                reason: Reject::Launch(e),
            }),
        }
    }

    let winner = outcomes
        .iter()
        .filter_map(|c| match c {
            CandidateOutcome::Timed(p) => Some(p),
            _ => None,
        })
        // Strict "<" keeps the earlier candidate on ties — smaller
        // local size, then cheaper layout (the sweep order above).
        .fold(None::<&CandidatePoint>, |best, p| match best {
            Some(b) if b.duration_us <= p.duration_us => Some(b),
            _ => Some(p),
        })
        .cloned();
    match winner {
        Some(winner) => {
            span.attr("winner_local_size", winner.local_size);
            span.attr("winner_layout", winner.layout.tag());
            span.attr("winner_duration_us", winner.duration_us);
            span.attr("sweep_launches", sweep_launches);
            Ok(SweepOutcome {
                winner,
                candidates: outcomes,
                sweep_launches,
            })
        }
        None => Err(SweepError::AllRejected {
            kernel: cfg.label(),
            candidates: outcomes,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{IndexOrder, Strategy};
    use milc_complex::DoubleComplex as Z;

    #[test]
    fn sweep_3lp1_kmajor_picks_a_paper_candidate() {
        let mut p = DslashProblem::<Z>::random(4, 2024);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let out = sweep_config(&mut p, cfg, &device, QueueMode::InOrder).unwrap();
        let sizes: Vec<u32> = out.candidates.iter().map(|c| c.local_size()).collect();
        assert_eq!(sizes, vec![96, 192, 384, 768]);
        assert!(sizes.contains(&out.winner.local_size));
        assert_eq!(out.rejected(), 0, "all Fig. 6 candidates must be clean");
        for p in out.timed() {
            assert!(p.duration_us >= out.winner.duration_us);
            assert!(p.waves > 0.0);
            assert!((0.0..=1.0).contains(&p.tail_fraction));
        }
    }

    #[test]
    fn ranked_sweep_times_top_k_and_prunes_the_tail_with_ranks() {
        let mut p = DslashProblem::<Z>::random(4, 2024);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::IMajor);
        let full = sweep_config(&mut p, cfg, &device, QueueMode::InOrder).unwrap();
        let total = full.candidates.len();
        assert!(total > 2, "need a candidate set worth pruning");

        let ranked = sweep_config_with_mode(
            &mut p,
            cfg,
            &device,
            QueueMode::InOrder,
            SweepMode::Ranked { time_top_k: 2 },
        )
        .unwrap();
        assert_eq!(ranked.candidates.len(), total);
        assert_eq!(ranked.timed().count(), 2);
        let pruned: Vec<_> = ranked
            .candidates
            .iter()
            .filter_map(|c| match c {
                CandidateOutcome::Rejected {
                    reason: Reject::StaticRank { rank, predicted_us },
                    ..
                } => Some((*rank, *predicted_us)),
                _ => None,
            })
            .collect();
        assert_eq!(pruned.len(), total - 2);
        for (rank, us) in &pruned {
            assert!(*rank > 2, "pruned candidates sit below the timed top-K");
            assert!(*us > 0.0);
        }
        // The ranked winner must be *duration-equivalent* to the
        // exhaustive winner: the model's job is to keep a winner-class
        // candidate inside the timed set.  (Exact identity is too
        // strong on this tiny lattice, where every candidate sits
        // within ~0.2% and the argmin is decided by cache-replacement
        // noise the static model cannot see.)
        let rel =
            (ranked.winner.duration_us - full.winner.duration_us).abs() / full.winner.duration_us;
        assert!(
            rel <= 5e-3,
            "ranked winner {} @ {:.3} µs vs exhaustive {} @ {:.3} µs ({:.3}% apart)",
            ranked.winner.local_size,
            ranked.winner.duration_us,
            full.winner.local_size,
            full.winner.duration_us,
            rel * 100.0
        );
        // Launch accounting: exhaustive pays warmup+timed per
        // candidate; ranked warms once and times top-K back-to-back.
        assert_eq!(full.sweep_launches, 2 * full.timed().count() as u64);
        assert_eq!(ranked.sweep_launches, 1 + ranked.timed().count() as u64);
    }

    #[test]
    fn ranked_sweep_with_k_covering_all_candidates_is_exhaustive() {
        let mut p = DslashProblem::<Z>::random(4, 7);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let full = sweep_config(&mut p, cfg, &device, QueueMode::InOrder).unwrap();
        let ranked = sweep_config_with_mode(
            &mut p,
            cfg,
            &device,
            QueueMode::InOrder,
            SweepMode::Ranked { time_top_k: 100 },
        )
        .unwrap();
        assert_eq!(ranked.timed().count(), full.timed().count());
        // With every candidate timed the winner can only differ by the
        // shared-state timing noise floor — assert duration equivalence.
        let rel =
            (ranked.winner.duration_us - full.winner.duration_us).abs() / full.winner.duration_us;
        assert!(
            rel <= 5e-3,
            "ranked winner {} @ {:.3} µs vs exhaustive {} @ {:.3} µs",
            ranked.winner.local_size,
            ranked.winner.duration_us,
            full.winner.local_size,
            full.winner.duration_us
        );
    }

    #[test]
    fn no_candidates_is_an_error_not_a_winner() {
        // L = 2: half-volume 8 → 1LP global size 8 < the smallest
        // warp-aligned group, so the candidate set is empty.
        let mut p = DslashProblem::<Z>::random(2, 1);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::OneLp, IndexOrder::KMajor);
        let err = sweep_config(&mut p, cfg, &device, QueueMode::InOrder);
        assert!(matches!(err, Err(SweepError::NoCandidates { .. })));
    }

    #[test]
    fn winner_tie_breaks_toward_smaller_local_size() {
        let points = [
            CandidateOutcome::Timed(CandidatePoint {
                local_size: 96,
                layout: SharedLayout::Flat,
                duration_us: 10.0,
                gflops: 1.0,
                occupancy: 0.5,
                waves: 2.0,
                tail_fraction: 0.0,
            }),
            CandidateOutcome::Timed(CandidatePoint {
                local_size: 192,
                layout: SharedLayout::Flat,
                duration_us: 10.0,
                gflops: 1.0,
                occupancy: 0.5,
                waves: 2.0,
                tail_fraction: 0.0,
            }),
        ];
        let best = points
            .iter()
            .filter_map(|c| match c {
                CandidateOutcome::Timed(p) => Some(p),
                _ => None,
            })
            .fold(None::<&CandidatePoint>, |best, p| match best {
                Some(b) if b.duration_us <= p.duration_us => Some(b),
                _ => Some(p),
            })
            .unwrap();
        assert_eq!(best.local_size, 96);
    }

    #[test]
    fn layout_sweep_covers_the_cross_product_and_a_remedy_wins() {
        let mut p = DslashProblem::<Z>::random(4, 2024);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let out = sweep_layouts_with_mode(
            &mut p,
            cfg,
            &device,
            QueueMode::InOrder,
            SweepMode::Exhaustive,
        )
        .unwrap();
        // 4 paper sizes × 3 tunable layouts, all clean.
        assert_eq!(out.candidates.len(), 12);
        assert_eq!(out.rejected(), 0);
        for ls in [96u32, 192, 384, 768] {
            let layouts: Vec<_> = out
                .candidates
                .iter()
                .filter(|c| c.local_size() == ls)
                .map(|c| c.layout())
                .collect();
            assert_eq!(layouts.len(), 3, "each size tried under each layout");
        }
        // The dense layout's 4-way bank conflict costs real modelled
        // time; a conflict-free remedy must out-run it at equal size.
        let flat_best = out
            .timed()
            .filter(|p| p.layout == SharedLayout::Flat)
            .map(|p| p.duration_us)
            .fold(f64::INFINITY, f64::min);
        assert!(
            out.winner.duration_us < flat_best,
            "winner {} {} @ {:.3} µs must beat best flat {:.3} µs",
            out.winner.local_size,
            out.winner.layout.tag(),
            out.winner.duration_us,
            flat_best
        );
        assert_ne!(out.winner.layout, SharedLayout::Flat);
    }

    #[test]
    fn layout_sweep_degenerates_to_flat_without_local_mem() {
        let mut p = DslashProblem::<Z>::random(4, 11);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp3, IndexOrder::KMajor);
        let out = sweep_layouts_with_mode(
            &mut p,
            cfg,
            &device,
            QueueMode::InOrder,
            SweepMode::Exhaustive,
        )
        .unwrap();
        assert!(out
            .candidates
            .iter()
            .all(|c| c.layout() == SharedLayout::Flat));
        let plain = sweep_config(&mut p, cfg, &device, QueueMode::InOrder).unwrap();
        assert_eq!(out.candidates.len(), plain.candidates.len());
        assert_eq!(out.winner.local_size, plain.winner.local_size);
    }

    #[test]
    fn ranked_layout_sweep_prunes_jointly_and_keeps_the_winner_class() {
        let mut p = DslashProblem::<Z>::random(4, 2024);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let full = sweep_layouts_with_mode(
            &mut p,
            cfg,
            &device,
            QueueMode::InOrder,
            SweepMode::Exhaustive,
        )
        .unwrap();
        let ranked = sweep_layouts_with_mode(
            &mut p,
            cfg,
            &device,
            QueueMode::InOrder,
            SweepMode::Ranked { time_top_k: 3 },
        )
        .unwrap();
        assert_eq!(ranked.candidates.len(), full.candidates.len());
        assert_eq!(ranked.timed().count(), 3);
        // ≥ 60% of the cross product goes untimed (ISSUE acceptance:
        // ranked sweeps avoid most launches even with the new axis).
        let avoided = ranked.candidates.len() - ranked.timed().count();
        assert!(avoided * 10 >= ranked.candidates.len() * 6);
        assert_eq!(ranked.sweep_launches, 1 + ranked.timed().count() as u64);
        // The cost model prices bank conflicts, so the joint top-K must
        // keep a winner-class (size, layout) point in the timed set.
        let rel =
            (ranked.winner.duration_us - full.winner.duration_us).abs() / full.winner.duration_us;
        assert!(
            rel <= 5e-3,
            "ranked winner {} {} @ {:.3} µs vs exhaustive {} {} @ {:.3} µs",
            ranked.winner.local_size,
            ranked.winner.layout.tag(),
            ranked.winner.duration_us,
            full.winner.local_size,
            full.winner.layout.tag(),
            full.winner.duration_us
        );
        assert_ne!(ranked.winner.layout, SharedLayout::Flat);
    }
}
