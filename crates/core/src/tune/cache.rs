//! The persistent tune cache: QUDA's `tunecache.tsv` idea, JSON-shaped.
//!
//! QUDA persists every kernel's tuned launch parameters to a
//! `tunecache` file keyed by device, problem geometry and kernel, so a
//! production run never repeats a sweep another run already paid for.
//! This module is that mechanism for the simulated device: entries are
//! keyed by [`TuneKey`] — device-spec hash, lattice dims, kernel label,
//! sanitizer on/off — and stored as versioned JSON (default location
//! `results/tunecache.json`).
//!
//! Invalidation is structural: a key that does not match byte-for-byte
//! misses (a changed device spec changes the hash, a changed lattice
//! changes the dims), and a file whose `version` differs from
//! [`TUNECACHE_VERSION`] — or that fails to parse at all — is discarded
//! wholesale, degrading to a full sweep.  Loading never panics.

use super::json::{self, Json};
use crate::kernels::common::SharedLayout;
use gpu_sim::DeviceSpec;
use milc_lattice::Lattice;
use std::collections::BTreeMap;
use std::path::Path;

/// On-disk format version; bump on any incompatible change to the entry
/// schema or to the meaning of the modelled durations (e.g. a timing
/// model recalibration), so stale winners are re-swept.  Version 2
/// added the tuned local-memory `layout` tag to every entry; version 3
/// added the cache [`TuneRegime`] to the key (a cold-regime winner is
/// not interchangeable with a warm one).
pub const TUNECACHE_VERSION: u64 = 3;

/// The cache regime a tuned entry's duration belongs to.  Warm entries
/// (the default — Table I's and Fig. 6's measurement condition) were
/// decided against caches already holding the launch's footprint; cold
/// entries (e.g. the sharded halo-exchange tuner, whose per-rank
/// launches alternate and evict each other) were decided against
/// first-touch launches.  The regime is part of the key because the two
/// rankings can legitimately disagree.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TuneRegime {
    /// Decided under warm caches (after a warmup launch).
    Warm,
    /// Decided for first-touch (cold-cache) launches.
    Cold,
}

impl TuneRegime {
    /// Stable on-disk tag (`"warm"` / `"cold"`).
    pub fn tag(&self) -> &'static str {
        match self {
            TuneRegime::Warm => "warm",
            TuneRegime::Cold => "cold",
        }
    }

    /// Parse an on-disk tag; `None` for anything else.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "warm" => Some(TuneRegime::Warm),
            "cold" => Some(TuneRegime::Cold),
            _ => None,
        }
    }
}

/// Stable FNV-1a hash of a device description.  Any field change —
/// SM count, cache sizes, clocks — yields a different hash, so entries
/// tuned for one device model never leak onto another (the same way
/// QUDA keys its tunecache on the device name and geometry).
pub fn device_spec_hash(device: &DeviceSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{device:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The identity of one tuning problem.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// [`device_spec_hash`] of the device model.
    pub device_hash: u64,
    /// Lattice dimensions.
    pub dims: [usize; 4],
    /// Kernel label, e.g. `3LP-1 k-major` (see
    /// [`KernelConfig::label`](crate::strategy::KernelConfig::label)).
    pub kernel: String,
    /// Whether the sweep ran under the sanitizer (sanitized launches
    /// execute in a different mode; their durations are not comparable).
    pub sanitized: bool,
    /// Cache regime the decision was made under (see [`TuneRegime`]).
    pub regime: TuneRegime,
}

impl TuneKey {
    /// Key for a kernel configuration on a lattice and device, in the
    /// default warm regime.
    pub fn new(device: &DeviceSpec, lattice: &Lattice, kernel: &str, sanitized: bool) -> Self {
        Self::new_in_regime(device, lattice, kernel, sanitized, TuneRegime::Warm)
    }

    /// Key with an explicit [`TuneRegime`].
    pub fn new_in_regime(
        device: &DeviceSpec,
        lattice: &Lattice,
        kernel: &str,
        sanitized: bool,
        regime: TuneRegime,
    ) -> Self {
        Self {
            device_hash: device_spec_hash(device),
            dims: lattice.dims(),
            kernel: kernel.to_string(),
            sanitized,
            regime,
        }
    }

    /// The cache index string (also human-greppable in the JSON).
    pub fn id(&self) -> String {
        format!(
            "dev:{:016x}|{}x{}x{}x{}|{}|{}|{}",
            self.device_hash,
            self.dims[0],
            self.dims[1],
            self.dims[2],
            self.dims[3],
            self.kernel,
            if self.sanitized { "sanitized" } else { "plain" },
            self.regime.tag()
        )
    }
}

/// One cached tuning decision.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneEntry {
    /// The problem this entry answers.
    pub key: TuneKey,
    /// The winning work-group size.
    pub local_size: u32,
    /// The winning local-memory layout's
    /// [`tag`](crate::kernels::common::SharedLayout::tag) (`"flat"`,
    /// `"pad5"`, `"xor2"`); always a tag [`SharedLayout::from_tag`]
    /// accepts — the strict parser rejects anything else.
    pub layout: String,
    /// Modelled kernel duration at the winner, µs.
    pub duration_us: f64,
    /// GFLOP/s at the winner (theoretical FLOPs over wall time, the
    /// paper's metric, on the *tuning* device — not A100-equivalent).
    pub gflops: f64,
    /// Candidates the sweep timed successfully.
    pub candidates_ok: u32,
    /// Candidates rejected (lint finding, launch error, or validation
    /// mismatch) — recorded so a cache entry says how contested it was.
    pub candidates_rejected: u32,
}

/// How a cache came off the disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadOutcome {
    /// No file at the path; starting empty.
    Fresh,
    /// Parsed cleanly; carries the number of entries.
    Loaded(usize),
    /// File existed but was unreadable/corrupt; starting empty.
    Corrupt,
    /// File parsed but its version differs; starting empty.
    VersionMismatch {
        /// Version found in the file.
        found: u64,
    },
}

/// An in-memory tune cache, loadable from / savable to JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneCache {
    entries: BTreeMap<String, TuneEntry>,
}

impl TuneCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a key; `None` is a miss.  Every field of the key
    /// participates via [`TuneKey::id`], so any mismatch misses.
    pub fn lookup(&self, key: &TuneKey) -> Option<&TuneEntry> {
        self.entries.get(&key.id())
    }

    /// Insert (or replace) an entry under its key.
    pub fn insert(&mut self, entry: TuneEntry) {
        self.entries.insert(entry.key.id(), entry);
    }

    /// Iterate entries in stable (id) order.
    pub fn iter(&self) -> impl Iterator<Item = &TuneEntry> {
        self.entries.values()
    }

    /// Serialize to the versioned JSON document.
    pub fn to_json(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .values()
            .map(|e| {
                Json::Obj(vec![
                    (
                        "key".into(),
                        Json::Obj(vec![
                            (
                                "device_hash".into(),
                                Json::Str(format!("{:016x}", e.key.device_hash)),
                            ),
                            (
                                "dims".into(),
                                Json::Arr(
                                    e.key.dims.iter().map(|&d| Json::Num(d as f64)).collect(),
                                ),
                            ),
                            ("kernel".into(), Json::Str(e.key.kernel.clone())),
                            ("sanitized".into(), Json::Bool(e.key.sanitized)),
                            ("regime".into(), Json::Str(e.key.regime.tag().to_string())),
                        ]),
                    ),
                    ("local_size".into(), Json::Num(f64::from(e.local_size))),
                    ("layout".into(), Json::Str(e.layout.clone())),
                    ("duration_us".into(), Json::Num(e.duration_us)),
                    ("gflops".into(), Json::Num(e.gflops)),
                    (
                        "candidates_ok".into(),
                        Json::Num(f64::from(e.candidates_ok)),
                    ),
                    (
                        "candidates_rejected".into(),
                        Json::Num(f64::from(e.candidates_rejected)),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::Num(TUNECACHE_VERSION as f64)),
            ("entries".into(), Json::Arr(entries)),
        ])
        .render()
    }

    /// Parse a cache document.  Strict: a wrong version, a missing
    /// field, or a malformed value anywhere rejects the whole document
    /// (a partially-trusted cache is worse than a re-sweep).
    pub fn from_json(text: &str) -> Result<Self, json::JsonError> {
        let doc = json::parse(text)?;
        let bad = |what: &'static str| json::JsonError { at: 0, what };
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or(bad("missing version"))?;
        if version != TUNECACHE_VERSION {
            return Err(bad("version mismatch"));
        }
        let mut cache = Self::new();
        for e in doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or(bad("missing entries array"))?
        {
            let key = e.get("key").ok_or(bad("entry missing key"))?;
            let device_hash = key
                .get("device_hash")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or(bad("bad device_hash"))?;
            let dims_arr = key
                .get("dims")
                .and_then(Json::as_arr)
                .ok_or(bad("bad dims"))?;
            if dims_arr.len() != 4 {
                return Err(bad("dims must have 4 extents"));
            }
            let mut dims = [0usize; 4];
            for (d, v) in dims.iter_mut().zip(dims_arr) {
                *d = v.as_u64().ok_or(bad("bad dim extent"))? as usize;
            }
            let entry = TuneEntry {
                key: TuneKey {
                    device_hash,
                    dims,
                    kernel: key
                        .get("kernel")
                        .and_then(Json::as_str)
                        .ok_or(bad("bad kernel label"))?
                        .to_string(),
                    sanitized: key
                        .get("sanitized")
                        .and_then(Json::as_bool)
                        .ok_or(bad("bad sanitized flag"))?,
                    regime: key
                        .get("regime")
                        .and_then(Json::as_str)
                        .and_then(TuneRegime::from_tag)
                        .ok_or(bad("bad regime tag"))?,
                },
                local_size: e
                    .get("local_size")
                    .and_then(Json::as_u64)
                    .filter(|&ls| ls >= 1 && ls <= u64::from(u32::MAX))
                    .ok_or(bad("bad local_size"))? as u32,
                layout: e
                    .get("layout")
                    .and_then(Json::as_str)
                    .filter(|s| SharedLayout::from_tag(s).is_some())
                    .ok_or(bad("bad layout tag"))?
                    .to_string(),
                duration_us: e
                    .get("duration_us")
                    .and_then(Json::as_f64)
                    .filter(|d| d.is_finite() && *d > 0.0)
                    .ok_or(bad("bad duration_us"))?,
                gflops: e
                    .get("gflops")
                    .and_then(Json::as_f64)
                    .filter(|g| g.is_finite() && *g >= 0.0)
                    .ok_or(bad("bad gflops"))?,
                candidates_ok: e
                    .get("candidates_ok")
                    .and_then(Json::as_u64)
                    .ok_or(bad("bad candidates_ok"))? as u32,
                candidates_rejected: e
                    .get("candidates_rejected")
                    .and_then(Json::as_u64)
                    .ok_or(bad("bad candidates_rejected"))?
                    as u32,
            };
            cache.insert(entry);
        }
        Ok(cache)
    }

    /// Load from a file.  Missing, unreadable, corrupt or
    /// version-mismatched files all yield an *empty* cache (with the
    /// outcome reported) — the tuner then simply re-sweeps.  Never
    /// panics.
    pub fn load(path: &Path) -> (Self, LoadOutcome) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return (Self::new(), LoadOutcome::Fresh)
            }
            Err(_) => return (Self::new(), LoadOutcome::Corrupt),
        };
        // Distinguish a version mismatch (expected after an upgrade)
        // from corruption (worth a warning) for reporting.
        match Self::from_json(&text) {
            Ok(cache) => {
                let n = cache.len();
                (cache, LoadOutcome::Loaded(n))
            }
            Err(_) => match json::parse(&text)
                .ok()
                .as_ref()
                .and_then(|d| d.get("version").and_then(Json::as_u64))
            {
                Some(found) if found != TUNECACHE_VERSION => {
                    (Self::new(), LoadOutcome::VersionMismatch { found })
                }
                _ => (Self::new(), LoadOutcome::Corrupt),
            },
        }
    }

    /// Save to a file, creating parent directories as needed.  The
    /// write goes through a sibling temp file and rename, so a crash
    /// mid-save leaves the previous cache intact rather than a torn
    /// file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kernel: &str, ls: u32) -> TuneEntry {
        TuneEntry {
            key: TuneKey {
                device_hash: 0xdead_beef_0123_4567,
                dims: [16, 16, 16, 16],
                kernel: kernel.to_string(),
                sanitized: false,
                regime: TuneRegime::Warm,
            },
            local_size: ls,
            layout: "flat".into(),
            duration_us: 875.1,
            gflops: 40.3,
            candidates_ok: 4,
            candidates_rejected: 0,
        }
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let mut c = TuneCache::new();
        c.insert(entry("3LP-1 k-major", 96));
        c.insert(entry("1LP", 256));
        let back = TuneCache::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn any_key_field_mismatch_misses() {
        let mut c = TuneCache::new();
        let e = entry("3LP-1 k-major", 96);
        c.insert(e.clone());
        assert!(c.lookup(&e.key).is_some());
        for variant in [
            TuneKey {
                device_hash: e.key.device_hash ^ 1,
                ..e.key.clone()
            },
            TuneKey {
                dims: [8, 16, 16, 16],
                ..e.key.clone()
            },
            TuneKey {
                kernel: "3LP-1 i-major".into(),
                ..e.key.clone()
            },
            TuneKey {
                sanitized: true,
                ..e.key.clone()
            },
            TuneKey {
                regime: TuneRegime::Cold,
                ..e.key.clone()
            },
        ] {
            assert!(c.lookup(&variant).is_none(), "{variant:?} should miss");
        }
    }

    #[test]
    fn version_mismatch_discards() {
        let text = TuneCache::new()
            .to_json()
            .replace("\"version\": 3", "\"version\": 999");
        assert!(TuneCache::from_json(&text).is_err());
    }

    #[test]
    fn unknown_layout_tag_rejects_the_document() {
        let mut c = TuneCache::new();
        c.insert(entry("3LP-1 k-major", 96));
        let text = c.to_json().replace("\"flat\"", "\"zigzag\"");
        assert!(TuneCache::from_json(&text).is_err());
        let roundtrip = c.to_json().replace("\"flat\"", "\"xor2\"");
        let back = TuneCache::from_json(&roundtrip).unwrap();
        assert_eq!(back.iter().next().unwrap().layout, "xor2");
    }

    #[test]
    fn load_of_missing_file_is_fresh() {
        let (c, outcome) = TuneCache::load(Path::new("/nonexistent/dir/tunecache.json"));
        assert!(c.is_empty());
        assert_eq!(outcome, LoadOutcome::Fresh);
    }

    #[test]
    fn load_save_roundtrip_and_corrupt_degrade() {
        let dir = std::env::temp_dir().join("milc-tunecache-test");
        let path = dir.join("tunecache.json");
        let mut c = TuneCache::new();
        c.insert(entry("2LP", 64));
        c.save(&path).unwrap();
        let (back, outcome) = TuneCache::load(&path);
        assert_eq!(back, c);
        assert_eq!(outcome, LoadOutcome::Loaded(1));

        std::fs::write(&path, b"{ this is not json").unwrap();
        let (empty, outcome) = TuneCache::load(&path);
        assert!(empty.is_empty());
        assert_eq!(outcome, LoadOutcome::Corrupt);

        std::fs::write(&path, "{\"version\": 7, \"entries\": []}").unwrap();
        let (empty, outcome) = TuneCache::load(&path);
        assert!(empty.is_empty());
        assert_eq!(outcome, LoadOutcome::VersionMismatch { found: 7 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn device_hash_distinguishes_devices() {
        let a = device_spec_hash(&DeviceSpec::a100());
        let b = device_spec_hash(&DeviceSpec::test_small());
        let mut scaled = DeviceSpec::a100();
        scaled.num_sms = 7;
        assert_ne!(a, b);
        assert_ne!(a, device_spec_hash(&scaled));
        assert_eq!(a, device_spec_hash(&DeviceSpec::a100()));
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut c = TuneCache::new();
        c.insert(entry("1LP", 256));
        let mut better = entry("1LP", 512);
        better.duration_us = 800.0;
        c.insert(better.clone());
        assert_eq!(c.len(), 1);
        assert_eq!(c.iter().next().unwrap().local_size, 512);
    }
}
