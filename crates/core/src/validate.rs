//! Validation of device results against the CPU reference.

use milc_complex::ComplexField;
use milc_lattice::ColorVector;

/// Worst-case deviation between a device output and the reference.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct MaxError {
    /// Largest absolute component difference.
    pub abs: f64,
    /// Largest component difference relative to the reference magnitude
    /// (guarded against tiny denominators).
    pub rel: f64,
}

impl MaxError {
    /// Whether the deviation is within floating-point reassociation
    /// noise — the different strategies sum the 16 stencil terms in
    /// different orders, and the atomic variants additionally commute
    /// partial sums, so exact equality is only expected for 1LP/2LP.
    pub fn within_reassociation_noise(&self) -> bool {
        self.rel < 1e-10
    }
}

/// Compare a device output against the reference, component-wise.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn compare_to_reference<C: ComplexField>(
    device: &[ColorVector<C>],
    reference: &[ColorVector<C>],
) -> MaxError {
    assert_eq!(
        device.len(),
        reference.len(),
        "output length mismatch: {} vs {}",
        device.len(),
        reference.len()
    );
    // Scale floor: tiny reference components compare against the overall
    // field magnitude instead of their own near-zero value.
    let scale = reference
        .iter()
        .flat_map(|r| (0..3).map(|i| r.c[i].abs()))
        .fold(0.0f64, f64::max)
        .max(1e-300);
    let mut err = MaxError::default();
    for (d, r) in device.iter().zip(reference) {
        for i in 0..3 {
            for (dv, rv) in [(d.c[i].re(), r.c[i].re()), (d.c[i].im(), r.c[i].im())] {
                let abs = (dv - rv).abs();
                let rel = abs / rv.abs().max(1e-6 * scale);
                err.abs = err.abs.max(abs);
                err.rel = err.rel.max(rel);
            }
        }
    }
    err
}

/// `true` iff the two outputs are bitwise identical.
pub fn bitwise_equal<C: ComplexField>(a: &[ColorVector<C>], b: &[ColorVector<C>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            (0..3).all(|i| {
                x.c[i].re().to_bits() == y.c[i].re().to_bits()
                    && x.c[i].im().to_bits() == y.c[i].im().to_bits()
            })
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use milc_complex::DoubleComplex as Z;

    fn v(x: f64) -> ColorVector<Z> {
        ColorVector::new(Z::new(x, -x), Z::new(2.0 * x, 0.0), Z::new(0.0, x))
    }

    #[test]
    fn identical_vectors_have_zero_error() {
        let a = vec![v(1.0), v(-2.0)];
        let e = compare_to_reference(&a, &a);
        assert_eq!(e.abs, 0.0);
        assert_eq!(e.rel, 0.0);
        assert!(e.within_reassociation_noise());
        assert!(bitwise_equal(&a, &a));
    }

    #[test]
    fn small_perturbation_detected() {
        let a = vec![v(1.0)];
        let mut b = a.clone();
        b[0].c[0] = Z::new(1.0 + 1e-13, -1.0);
        let e = compare_to_reference(&b, &a);
        assert!(e.abs > 0.0 && e.abs < 1e-12);
        assert!(e.within_reassociation_noise());
        assert!(!bitwise_equal(&a, &b));
    }

    #[test]
    fn gross_error_flagged() {
        let a = vec![v(1.0)];
        let mut b = a.clone();
        b[0].c[1] = Z::new(3.0, 0.0); // reference is 2.0
        let e = compare_to_reference(&b, &a);
        assert!(e.rel > 0.1);
        assert!(!e.within_reassociation_noise());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let a = vec![v(1.0)];
        let b = vec![v(1.0), v(2.0)];
        let _ = compare_to_reference(&a, &b);
    }
}
