//! The MILC-Dslash core library.
//!
//! This crate is the paper's primary contribution rebuilt in Rust: the
//! staggered (Kogut-Susskind, first- plus third-neighbor) Dslash operator
//! `C = Dslash × B` of Eq. (1), implemented
//!
//! * as **CPU references** — a sequential implementation
//!   ([`mod@reference`]) and a rayon-parallel one ([`parallel_cpu`]) used for
//!   validation and host-side baselines; and
//! * as **device kernels** for the [`gpu_sim`] execution-model simulator,
//!   one per parallel strategy of Section III: [`kernels::one_lp`] (one
//!   work-item per site), [`kernels::two_lp`] (+ matrix rows),
//!   [`kernels::three_lp`] (+ directions; three race-resolution variants
//!   3LP-1/2/3) and [`kernels::four_lp`] (+ link types; 4LP-1/2), each in
//!   its work-item index orders (k-major / i-major / l-major).
//!
//! [`problem::DslashProblem`] owns the lattice data and its device
//! packing; [`runner`] runs one configuration end to end (launch,
//! validate, report GFLOP/s the way the paper does — theoretical FLOPs
//! over measured duration).

pub mod cpu_opt;
pub mod flops;
pub mod kernels;
pub mod obs;
pub mod operator;
pub mod parallel_cpu;
pub mod problem;
pub mod reference;
pub mod runner;
pub mod shard;
pub mod solver;
pub mod staticcheck;
pub mod strategy;
pub mod tune;
pub mod validate;

pub use flops::theoretical_flops;
pub use kernels::common::SharedLayout;
pub use kernels::defects::{
    AliasingSwizzle, BrokenBarrierThreeLp1, OobGaugeIndex, PlainStoreThreeLp3, UninitCRead,
};
pub use obs::prof::{Bottleneck, CriticalPath, DriftReport, DriftRow, RooflineRow};
pub use obs::{Metrics, Trace, Tracer};
pub use operator::{recommended_config, SimulatedDslash};
pub use problem::DslashProblem;
pub use runner::{
    run_config, run_config_sanitized, run_config_timed, run_config_tuned, run_config_warm,
    run_config_warm_on_state, run_config_warm_tuned, RunOutcome, TimedRuns,
};
pub use shard::{
    modelled_trace, run_sharded, run_sharded_with, tune_rank_local_sizes, HaloFault, Partition,
    ShardMode, ShardOutcome, ShardedProblem,
};
pub use solver::{
    estimate_solve_stream, solve, solve_tuned, solve_with, CgSolution, DeviceNormalOperator,
    NormalOp, NormalOperator, TunedCgSolution,
};
pub use staticcheck::{
    estimate_config, occupancy_report, rank_candidates, run_config_staticcheck, staticcheck_kernel,
    RankedCandidate,
};
pub use strategy::{IndexOrder, IndexStyle, KernelConfig, Strategy};
pub use tune::{TuneCache, TuneDecision, TuneEntry, TuneError, TuneKey, TuneRegime, Tuner};
pub use validate::{compare_to_reference, MaxError};
