//! Static analysis of Dslash launch configurations (DESIGN §8).
//!
//! Thin instrumentation wrapper over the simulator's
//! [`staticcheck`](gpu_sim::staticcheck) analyzer: runs the affine
//! footprint inference and whole-launch proofs on a problem's kernel
//! *without executing it* — no output zeroing, no memory mutation —
//! and records an observability span plus the
//! `staticcheck_findings_total` metric.

use crate::obs;
use crate::problem::DslashProblem;
use crate::strategy::KernelConfig;
use gpu_sim::{
    DeviceMemory, DeviceSpec, Kernel, NdRange, SimError, StaticCheckConfig, StaticReport,
};
use milc_complex::ComplexField;

/// Statically analyze one kernel launch, tracing the analysis as a
/// `staticcheck` span on the `label` track and bumping
/// `staticcheck_findings_total{config=label}` by the finding count.
pub fn staticcheck_kernel(
    kernel: &dyn Kernel,
    range: &NdRange,
    device: &DeviceSpec,
    mem: &DeviceMemory,
    cfg: &StaticCheckConfig,
    label: &str,
) -> StaticReport {
    let span = obs::span_on(label, "staticcheck");
    let report = gpu_sim::staticcheck_analyze(kernel, range, device, mem, cfg);
    span.attr("probes", report.probes as u64);
    span.attr("residues", report.residues as u64);
    span.attr("findings", report.findings.len() as u64);
    span.attr("notes", report.notes.len() as u64);
    let occurrences: u64 = report.findings.iter().map(|f| f.occurrences).sum();
    if occurrences > 0 {
        obs::metric_inc(
            "staticcheck_findings_total",
            &[("config", label)],
            occurrences,
        );
    }
    report
}

/// Statically analyze one `(config, local size)` of a problem.  Unlike
/// the dynamic runners this takes the problem immutably: the analysis
/// never writes device memory (probe lanes record, they do not store),
/// so the output buffer is left exactly as the caller had it.
pub fn run_config_staticcheck<C: ComplexField>(
    problem: &DslashProblem<C>,
    cfg: KernelConfig,
    local_size: u32,
    device: &DeviceSpec,
    scfg: &StaticCheckConfig,
) -> Result<StaticReport, SimError> {
    if !cfg.local_size_legal(local_size, problem.lattice().half_volume() as u64) {
        return Err(SimError::InvalidLocalSize {
            local: local_size,
            max: device.max_group_size,
        });
    }
    let range = problem.launch_range(cfg, local_size);
    let kernel = problem.make_kernel(cfg, range.num_groups());
    Ok(staticcheck_kernel(
        kernel.as_ref(),
        &range,
        device,
        problem.memory(),
        scfg,
        &cfg.label(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{IndexOrder, Strategy};
    use milc_complex::DoubleComplex as Z;

    #[test]
    fn paper_config_is_statically_clean() {
        let p = DslashProblem::<Z>::random(4, 41);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let r =
            run_config_staticcheck(&p, cfg, 96, &device, &StaticCheckConfig::default()).unwrap();
        assert!(r.is_clean(), "{}", r.render_text());
        assert!(r.probes > 0);
        assert!(!r.footprints.is_empty());
    }

    #[test]
    fn analysis_leaves_device_memory_untouched() {
        let p = DslashProblem::<Z>::random(4, 42);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::OneLp, IndexOrder::KMajor);
        let before = p.memory().init_snapshot();
        let _ = run_config_staticcheck(&p, cfg, 32, &device, &StaticCheckConfig::full()).unwrap();
        assert_eq!(before, p.memory().init_snapshot());
    }

    #[test]
    fn illegal_local_size_surfaces_as_error() {
        let p = DslashProblem::<Z>::random(4, 43);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        assert!(
            run_config_staticcheck(&p, cfg, 1000, &device, &StaticCheckConfig::default()).is_err()
        );
    }
}
