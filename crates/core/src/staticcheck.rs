//! Static analysis of Dslash launch configurations (DESIGN §8).
//!
//! Thin instrumentation wrapper over the simulator's
//! [`staticcheck`](gpu_sim::staticcheck) analyzer: runs the affine
//! footprint inference and whole-launch proofs on a problem's kernel
//! *without executing it* — no output zeroing, no memory mutation —
//! and records an observability span plus the
//! `staticcheck_findings_total` metric.

use crate::obs;
use crate::problem::DslashProblem;
use crate::strategy::KernelConfig;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{
    estimate_launch, rank_estimates, CostEstimate, DeviceMemory, DeviceSpec, Kernel, NdRange,
    Occupancy, SimError, StaticCheckConfig, StaticReport, TimingModel,
};
use milc_complex::ComplexField;

/// Statically analyze one kernel launch, tracing the analysis as a
/// `staticcheck` span on the `label` track and bumping
/// `staticcheck_findings_total{config=label}` by the finding count.
pub fn staticcheck_kernel(
    kernel: &dyn Kernel,
    range: &NdRange,
    device: &DeviceSpec,
    mem: &DeviceMemory,
    cfg: &StaticCheckConfig,
    label: &str,
) -> StaticReport {
    let span = obs::span_on(label, "staticcheck");
    let report = gpu_sim::staticcheck_analyze(kernel, range, device, mem, cfg);
    span.attr("probes", report.probes as u64);
    span.attr("residues", report.residues as u64);
    span.attr("findings", report.findings.len() as u64);
    span.attr("notes", report.notes.len() as u64);
    let occurrences: u64 = report.findings.iter().map(|f| f.occurrences).sum();
    if occurrences > 0 {
        obs::metric_inc(
            "staticcheck_findings_total",
            &[("config", label)],
            occurrences,
        );
    }
    report
}

/// Statically analyze one `(config, local size)` of a problem.  Unlike
/// the dynamic runners this takes the problem immutably: the analysis
/// never writes device memory (probe lanes record, they do not store),
/// so the output buffer is left exactly as the caller had it.
pub fn run_config_staticcheck<C: ComplexField>(
    problem: &DslashProblem<C>,
    cfg: KernelConfig,
    local_size: u32,
    device: &DeviceSpec,
    scfg: &StaticCheckConfig,
) -> Result<StaticReport, SimError> {
    if !cfg.local_size_legal(local_size, problem.lattice().half_volume() as u64) {
        return Err(SimError::InvalidLocalSize {
            local: local_size,
            max: device.max_group_size,
        });
    }
    let range = problem.launch_range(cfg, local_size);
    let kernel = problem.make_kernel(cfg, range.num_groups());
    Ok(staticcheck_kernel(
        kernel.as_ref(),
        &range,
        device,
        problem.memory(),
        scfg,
        &cfg.label(),
    ))
}

/// The static occupancy picture of one `(config, local size)`: the
/// limiter/waves/achieved analysis the cost model feeds on, computed
/// from [`gpu_sim::KernelResources`] alone — no probing, no launch.
pub fn occupancy_report<C: ComplexField>(
    problem: &DslashProblem<C>,
    cfg: KernelConfig,
    local_size: u32,
    device: &DeviceSpec,
) -> Result<Occupancy, SimError> {
    if !cfg.local_size_legal(local_size, problem.lattice().half_volume() as u64) {
        return Err(SimError::InvalidLocalSize {
            local: local_size,
            max: device.max_group_size,
        });
    }
    let range = problem.launch_range(cfg, local_size);
    let kernel = problem.make_kernel(cfg, range.num_groups());
    occupancy(
        device,
        local_size,
        &kernel.resources(local_size),
        range.num_groups(),
    )
}

/// Analytic cost estimate of one `(config, local size)` launch — the
/// prediction the drift gate ([`crate::obs::prof::drift`]) holds the
/// measured launch against.  Same estimation path as
/// [`rank_candidates`], but for a single requested size.
pub fn estimate_config<C: ComplexField>(
    problem: &DslashProblem<C>,
    cfg: KernelConfig,
    local_size: u32,
    device: &DeviceSpec,
) -> Result<CostEstimate, String> {
    if !cfg.local_size_legal(local_size, problem.lattice().half_volume() as u64) {
        return Err(format!(
            "local size {local_size} illegal for {}",
            cfg.label()
        ));
    }
    let range = problem.launch_range(cfg, local_size);
    let kernel = problem.make_kernel(cfg, range.num_groups());
    estimate_launch(
        kernel.as_ref(),
        &range,
        device,
        problem.memory(),
        &TimingModel::calibrated(),
    )
}

/// One candidate local size in a static ranking.
#[derive(Clone, Debug)]
pub struct RankedCandidate {
    /// The candidate local size.
    pub local_size: u32,
    /// Its cost estimate, or the reason none exists.  Candidates
    /// without an estimate cannot be ranked — a ranked sweep must time
    /// them rather than prune them.
    pub estimate: Result<CostEstimate, String>,
}

/// Statically rank every legal local size of a configuration by
/// predicted duration (ascending; ties toward the smaller local size).
/// Estimable candidates come first in rank order; inestimable ones
/// follow in local-size order with their reasons.  Traced as a
/// `staticrank` span on the config's track.
///
/// The launch traffic is estimated **once per configuration**, at the
/// largest legal local size (fewest groups, so the probe set covers
/// the largest fraction of the launch), and every candidate is derived
/// from that shared base via [`CostEstimate::with_occupancy`]: within
/// one configuration the traffic is grouping-invariant, so candidates
/// differ only by occupancy/waves/tail, and probe sampling error —
/// which *does* vary with the partitioning — cancels exactly instead
/// of scrambling near-tied candidates.
pub fn rank_candidates<C: ComplexField>(
    problem: &DslashProblem<C>,
    cfg: KernelConfig,
    device: &DeviceSpec,
) -> Vec<RankedCandidate> {
    let span = obs::span_on(&cfg.label(), "staticrank");
    let timing = TimingModel::calibrated();
    let sizes = cfg.legal_local_sizes(problem.lattice().half_volume() as u64);
    span.attr("candidates", sizes.len() as u64);

    // Shared traffic base from the canonical (largest legal) size.
    let base: Result<CostEstimate, String> = match sizes.last() {
        Some(&ls) => {
            let range = problem.launch_range(cfg, ls);
            let kernel = problem.make_kernel(cfg, range.num_groups());
            estimate_launch(kernel.as_ref(), &range, device, problem.memory(), &timing)
        }
        None => Err("no legal local size".to_string()),
    };

    let mut estimates = Vec::new();
    let mut failures = Vec::new();
    for ls in sizes {
        let est = base.as_ref().map_err(String::clone).and_then(|b| {
            let range = problem.launch_range(cfg, ls);
            let kernel = problem.make_kernel(cfg, range.num_groups());
            occupancy(device, ls, &kernel.resources(ls), range.num_groups())
                .map_err(|e| format!("occupancy infeasible: {e}"))
                .map(|occ| b.with_occupancy(ls, range.num_groups(), occ, &timing, device))
        });
        match est {
            Ok(e) => estimates.push(e),
            Err(why) => failures.push(RankedCandidate {
                local_size: ls,
                estimate: Err(why),
            }),
        }
    }
    span.attr("inestimable", failures.len() as u64);
    let mut out: Vec<RankedCandidate> = rank_estimates(estimates)
        .into_iter()
        .map(|e| RankedCandidate {
            local_size: e.local_size,
            estimate: Ok(e),
        })
        .collect();
    out.extend(failures);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{IndexOrder, Strategy};
    use milc_complex::DoubleComplex as Z;

    #[test]
    fn paper_config_is_statically_clean() {
        let p = DslashProblem::<Z>::random(4, 41);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let r =
            run_config_staticcheck(&p, cfg, 96, &device, &StaticCheckConfig::default()).unwrap();
        assert!(r.is_clean(), "{}", r.render_text());
        assert!(r.probes > 0);
        assert!(!r.footprints.is_empty());
    }

    #[test]
    fn analysis_leaves_device_memory_untouched() {
        let p = DslashProblem::<Z>::random(4, 42);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::OneLp, IndexOrder::KMajor);
        let before = p.memory().init_snapshot();
        let _ = run_config_staticcheck(&p, cfg, 32, &device, &StaticCheckConfig::full()).unwrap();
        assert_eq!(before, p.memory().init_snapshot());
    }

    #[test]
    fn illegal_local_size_surfaces_as_error() {
        let p = DslashProblem::<Z>::random(4, 43);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        assert!(
            run_config_staticcheck(&p, cfg, 1000, &device, &StaticCheckConfig::default()).is_err()
        );
    }

    #[test]
    fn occupancy_report_matches_launch_occupancy() {
        let mut p = DslashProblem::<Z>::random(4, 44);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let occ = occupancy_report(&p, cfg, 96, &device).unwrap();
        let run = crate::runner::run_config(&mut p, cfg, 96, &device, gpu_sim::QueueMode::InOrder)
            .unwrap();
        assert_eq!(occ, run.report.occupancy);
        assert!(occupancy_report(&p, cfg, 1000, &device).is_err());
    }

    #[test]
    fn rank_candidates_covers_every_legal_size_in_duration_order() {
        let p = DslashProblem::<Z>::random(4, 45);
        let device = DeviceSpec::test_small();
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let ranked = rank_candidates(&p, cfg, &device);
        let mut sizes: Vec<u32> = ranked.iter().map(|r| r.local_size).collect();
        sizes.sort_unstable();
        assert_eq!(
            sizes,
            cfg.legal_local_sizes(p.lattice().half_volume() as u64)
        );
        let durations: Vec<f64> = ranked
            .iter()
            .filter_map(|r| r.estimate.as_ref().ok().map(|e| e.duration_us))
            .collect();
        assert!(!durations.is_empty(), "paper config must be estimable");
        assert!(durations.windows(2).all(|w| w[0] <= w[1]));
    }
}
