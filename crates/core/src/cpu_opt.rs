//! Optimized CPU Dslash: the tuned host-side production path.
//!
//! Compared to the straightforward [`reference`](crate::reference)
//! implementation, this version applies the standard CPU optimizations
//! MILC's own site-loop kernels use:
//!
//! * **fused multiply-add** accumulation (`f64::mul_add`) for the
//!   complex arithmetic — one rounding per term and the FMA pipe on any
//!   modern core;
//! * **block-cyclic rayon scheduling** over cache-friendly chunks of
//!   consecutive checkerboard sites (consecutive even sites share
//!   gauge-cache lines and most of their neighbor spinors);
//! * **fully unrolled color loops** with the accumulators held in
//!   scalars, letting the compiler keep them in registers.
//!
//! Results differ from the reference only by FMA rounding (the fused
//! product is not rounded before the add), so validation is
//! tolerance-based.  The `cpu_dslash` Criterion bench compares the three
//! host paths (sequential reference, rayon reference, this).

use milc_complex::DoubleComplex;
use milc_lattice::{ColorVector, GaugeField, NeighborTable, Parity, QuarkField};
use rayon::prelude::*;

/// Sites per rayon work unit: large enough to amortize scheduling,
/// small enough to balance the tail (tuned on the benches).
const CHUNK: usize = 256;

#[derive(Copy, Clone)]
struct Acc {
    re: f64,
    im: f64,
}

impl Acc {
    #[inline(always)]
    fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// `self += sign * u * b` with FMA contraction.
    #[inline(always)]
    fn fma(&mut self, u: DoubleComplex, b: DoubleComplex, sign: f64) {
        // (u.re*b.re - u.im*b.im) + i (u.re*b.im + u.im*b.re)
        let pre = u.re.mul_add(b.re, -(u.im * b.im));
        let pim = u.re.mul_add(b.im, u.im * b.re);
        self.re = sign.mul_add(pre, self.re);
        self.im = sign.mul_add(pim, self.im);
    }
}

/// Optimized staggered Dslash over all sites of `parity`, writing into a
/// preallocated output.
pub fn dslash_opt_into(
    gauge: &GaugeField<DoubleComplex>,
    b: &QuarkField<DoubleComplex>,
    nt: &NeighborTable,
    parity: Parity,
    out: &mut [ColorVector<DoubleComplex>],
) {
    let lattice = gauge.lattice();
    assert_eq!(out.len(), lattice.half_volume(), "output length mismatch");
    let arrays = [
        gauge.array(milc_lattice::LinkType::FatFwd),
        gauge.array(milc_lattice::LinkType::LongFwd),
        gauge.array(milc_lattice::LinkType::FatBwd),
        gauge.array(milc_lattice::LinkType::LongBwd),
    ];
    let bsites = b.as_slice();

    out.par_chunks_mut(CHUNK)
        .enumerate()
        .for_each(|(chunk, slots)| {
            let cb0 = chunk * CHUNK;
            for (off, slot) in slots.iter_mut().enumerate() {
                let cb = cb0 + off;
                let s = lattice.site_of_checkerboard(cb, parity);
                let mut acc = [Acc::zero(); 3];
                for (l, links) in arrays.iter().enumerate() {
                    let sign = if l < 2 { 1.0 } else { -1.0 };
                    for k in 0..4 {
                        let src = nt.source_site(l, s, k);
                        let bv = &bsites[src];
                        let m = &links[s * 4 + k];
                        // Fully unrolled 3x3 complex mat-vec.
                        for (a, row) in acc.iter_mut().zip(&m.e) {
                            a.fma(row[0], bv.c[0], sign);
                            a.fma(row[1], bv.c[1], sign);
                            a.fma(row[2], bv.c[2], sign);
                        }
                    }
                }
                *slot = ColorVector::new(
                    DoubleComplex::new(acc[0].re, acc[0].im),
                    DoubleComplex::new(acc[1].re, acc[1].im),
                    DoubleComplex::new(acc[2].re, acc[2].im),
                );
            }
        });
}

/// Allocating convenience wrapper around [`dslash_opt_into`].
pub fn dslash_opt(
    gauge: &GaugeField<DoubleComplex>,
    b: &QuarkField<DoubleComplex>,
    nt: &NeighborTable,
    parity: Parity,
) -> Vec<ColorVector<DoubleComplex>> {
    let mut out = vec![ColorVector::zero(); gauge.lattice().half_volume()];
    dslash_opt_into(gauge, b, nt, parity, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::validate::compare_to_reference;
    use milc_lattice::Lattice;

    #[test]
    fn matches_reference_within_fma_rounding() {
        let lat = Lattice::hypercubic(4);
        let g = GaugeField::<DoubleComplex>::random(&lat, 71);
        let b = QuarkField::<DoubleComplex>::random(&lat, 72);
        let nt = NeighborTable::build(&lat);
        for parity in [Parity::Even, Parity::Odd] {
            let expect = reference::dslash(&g, &b, parity);
            let got = dslash_opt(&g, &b, &nt, parity);
            let err = compare_to_reference(&got, &expect);
            assert!(err.rel < 1e-12, "parity {parity:?}: {err:?}");
        }
    }

    #[test]
    fn deterministic_across_thread_schedules() {
        // Chunked writes are disjoint, so the result must not depend on
        // rayon's scheduling.
        let lat = Lattice::hypercubic(4);
        let g = GaugeField::<DoubleComplex>::random(&lat, 73);
        let b = QuarkField::<DoubleComplex>::random(&lat, 74);
        let nt = NeighborTable::build(&lat);
        let a = dslash_opt(&g, &b, &nt, Parity::Even);
        let c = dslash_opt(&g, &b, &nt, Parity::Even);
        assert_eq!(a, c);
    }

    #[test]
    fn non_chunk_multiple_volumes_are_handled() {
        // 2^4/2 = 8 sites: smaller than one chunk; 6^4/2 = 648: not a
        // multiple of 256.
        for l in [2usize, 6] {
            let lat = Lattice::hypercubic(l);
            let g = GaugeField::<DoubleComplex>::random(&lat, 75);
            let b = QuarkField::<DoubleComplex>::random(&lat, 76);
            let nt = NeighborTable::build(&lat);
            let expect = reference::dslash(&g, &b, Parity::Even);
            let got = dslash_opt(&g, &b, &nt, Parity::Even);
            let err = compare_to_reference(&got, &expect);
            assert!(err.rel < 1e-12, "L = {l}: {err:?}");
        }
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn validates_output_length() {
        let lat = Lattice::hypercubic(2);
        let g = GaugeField::<DoubleComplex>::random(&lat, 1);
        let b = QuarkField::<DoubleComplex>::random(&lat, 2);
        let nt = NeighborTable::build(&lat);
        let mut out = vec![ColorVector::zero(); 3];
        dslash_opt_into(&g, &b, &nt, Parity::Even, &mut out);
    }
}
