//! The device kernels: one module per parallel strategy of Section III.
//!
//! All kernels are generic over the complex representation
//! ([`ComplexField`]): instantiating with
//! [`DoubleComplex`](milc_complex::DoubleComplex) gives the paper's
//! hand-rolled arithmetic, instantiating with
//! [`Cplx`](milc_complex::Cplx) gives the "3LP-1 SyclCPLX" variant —
//! same kernel, different complex library, exactly as in Section IV-C.
//!
//! **Register estimates.**  The simulator cannot run a register
//! allocator, so each strategy declares its per-item register count
//! (consumed by the occupancy calculator): 1LP holds three complex
//! accumulators, a full `B` vector, the `(l, k)` loop state and address
//! temporaries for a whole site (≈64 registers — which is what pins its
//! occupancy to ~50%, Table I row 4); 2LP holds one row's accumulator
//! plus the site state (≈40); the 3LP/4LP items hold a single partial
//! sum (≈36).  The SyclCPLX type adds `EXTRA_REGISTERS` for its
//! special-value fix-up intermediates.
//!
//! **Phase structure** (barriers): 1LP/2LP have one phase; 3LP-1/2 have
//! two (their single `group_barrier`); 3LP-3 has two (initialize-then-
//! accumulate); 4LP has three (its two barriers).

pub mod common;
pub mod defects;
pub mod four_lp;
pub mod one_lp;
pub mod three_lp;
pub mod two_lp;

use crate::strategy::{IndexOrder, KernelConfig, Strategy};
use common::DevTables;
use gpu_sim::Kernel;
use milc_complex::ComplexField;

/// Decompose a 3LP global id into `(site_cb, i, k)` per the index order
/// (Section III-C listings).
#[inline]
pub(crate) fn decomp3(gid: u64, order: IndexOrder) -> (u64, u64, u64) {
    let s = gid / 12;
    match order {
        // k-major: i fastest, items grouped by k.
        IndexOrder::KMajor => (s, gid % 3, (gid / 3) % 4),
        // i-major: k fastest, items grouped by i.
        IndexOrder::IMajor | IndexOrder::LMajor => (s, (gid / 4) % 3, gid % 4),
    }
}

/// Decompose a 4LP global id into `(site_cb, i, k, l)` (Section III-D).
#[inline]
pub(crate) fn decomp4(gid: u64, strategy: Strategy, order: IndexOrder) -> (u64, u64, u64, u64) {
    let s = gid / 48;
    match (strategy, order) {
        (Strategy::FourLp1, IndexOrder::KMajor) => (s, gid % 3, (gid / 3) % 4, (gid / 12) % 4),
        (Strategy::FourLp1, _) => (s, (gid / 4) % 3, gid % 4, (gid / 12) % 4),
        (Strategy::FourLp2, IndexOrder::LMajor) => (s, gid % 3, (gid / 12) % 4, (gid / 3) % 4),
        (Strategy::FourLp2, _) => (s, (gid / 4) % 3, (gid / 12) % 4, gid % 4),
        _ => unreachable!("decomp4 called for a non-4LP strategy"),
    }
}

/// Local-memory strides (in 16-byte complex elements) of the two 4LP
/// reductions: `(l_stride, k_stride)`.
#[inline]
pub(crate) fn four_lp_strides(strategy: Strategy, order: IndexOrder) -> (u32, u32) {
    match (strategy, order) {
        (Strategy::FourLp1, IndexOrder::KMajor) => (12, 3),
        (Strategy::FourLp1, _) => (12, 1),
        (Strategy::FourLp2, IndexOrder::LMajor) => (3, 12),
        (Strategy::FourLp2, _) => (1, 12),
        _ => unreachable!(),
    }
}

/// Build the boxed kernel for a configuration over tables `t`.
///
/// `num_groups` parameterizes the composed-index permutation and must
/// match the launch's group count.
pub fn build_kernel<C: ComplexField>(
    cfg: KernelConfig,
    t: DevTables,
    num_groups: u64,
) -> Box<dyn Kernel> {
    match cfg.strategy {
        Strategy::OneLp => Box::new(one_lp::OneLpKernel::<C>::new(cfg, t, num_groups)),
        Strategy::TwoLp => Box::new(two_lp::TwoLpKernel::<C>::new(cfg, t, num_groups)),
        Strategy::ThreeLp1 | Strategy::ThreeLp2 | Strategy::ThreeLp3 => {
            Box::new(three_lp::ThreeLpKernel::<C>::new(cfg, t, num_groups))
        }
        Strategy::FourLp1 | Strategy::FourLp2 => {
            Box::new(four_lp::FourLpKernel::<C>::new(cfg, t, num_groups))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomp3_k_major_matches_paper_listing() {
        // int s = gid / (ndim*nrow); int i = gid % nrow;
        // int k = (gid / nrow) % ndim;
        for gid in 0..48u64 {
            let (s, i, k) = decomp3(gid, IndexOrder::KMajor);
            assert_eq!(s, gid / 12);
            assert_eq!(i, gid % 3);
            assert_eq!(k, (gid / 3) % 4);
        }
    }

    #[test]
    fn decomp3_covers_each_site_once() {
        for order in [IndexOrder::KMajor, IndexOrder::IMajor] {
            let mut seen = std::collections::HashSet::new();
            for gid in 0..120u64 {
                let (s, i, k) = decomp3(gid, order);
                assert!(seen.insert((s, i, k)), "duplicate ({s},{i},{k})");
                assert!(i < 3 && k < 4);
            }
            assert_eq!(seen.len(), 120);
        }
    }

    #[test]
    fn decomp4_covers_each_site_once() {
        for (strat, order) in [
            (Strategy::FourLp1, IndexOrder::KMajor),
            (Strategy::FourLp1, IndexOrder::IMajor),
            (Strategy::FourLp2, IndexOrder::LMajor),
            (Strategy::FourLp2, IndexOrder::IMajor),
        ] {
            let mut seen = std::collections::HashSet::new();
            for gid in 0..96u64 {
                let (s, i, k, l) = decomp4(gid, strat, order);
                assert!(seen.insert((s, i, k, l)));
                assert!(i < 3 && k < 4 && l < 4);
                assert_eq!(s, gid / 48);
            }
            assert_eq!(seen.len(), 96);
        }
    }

    #[test]
    fn four_lp1_k_major_active_clusters_are_12_consecutive() {
        // Paper Section IV-D8: in 4LP-1 the 12 active work-items of one
        // l-branch are consecutive.
        let l_of = |gid| decomp4(gid, Strategy::FourLp1, IndexOrder::KMajor).3;
        let mut run = 1;
        let mut runs = Vec::new();
        for gid in 1..96u64 {
            if l_of(gid) == l_of(gid - 1) {
                run += 1;
            } else {
                runs.push(run);
                run = 1;
            }
        }
        runs.push(run);
        assert!(runs.iter().all(|&r| r == 12), "{runs:?}");
    }

    #[test]
    fn four_lp2_l_major_clusters_of_3_and_i_major_of_1() {
        let l_of_lmaj = |gid| decomp4(gid, Strategy::FourLp2, IndexOrder::LMajor).3;
        for gid in (0..96u64).step_by(3) {
            assert_eq!(l_of_lmaj(gid), l_of_lmaj(gid + 1));
            assert_eq!(l_of_lmaj(gid), l_of_lmaj(gid + 2));
            if gid % 12 < 9 {
                assert_ne!(l_of_lmaj(gid), l_of_lmaj(gid + 3));
            }
        }
        let l_of_imaj = |gid| decomp4(gid, Strategy::FourLp2, IndexOrder::IMajor).3;
        for gid in 0..95u64 {
            assert_ne!(l_of_imaj(gid), l_of_imaj(gid + 1));
        }
    }

    #[test]
    fn strides_match_decompositions() {
        // The lane holding (s, i, k, l) sits at local offset matching the
        // decomposition; partners along l must differ by l_stride.
        for (strat, order) in [
            (Strategy::FourLp1, IndexOrder::KMajor),
            (Strategy::FourLp1, IndexOrder::IMajor),
            (Strategy::FourLp2, IndexOrder::LMajor),
            (Strategy::FourLp2, IndexOrder::IMajor),
        ] {
            let (ls, ks) = four_lp_strides(strat, order);
            // find gid with (s,i,k,l)=(0,x,y,0) and its l=1 partner.
            for gid in 0..48u64 {
                let (s, i, k, l) = decomp4(gid, strat, order);
                if l == 0 {
                    // partner with l=1, same (s,i,k):
                    let partner = (0..48u64)
                        .find(|&g| decomp4(g, strat, order) == (s, i, k, 1))
                        .unwrap();
                    assert_eq!(partner - gid, ls as u64, "{strat:?} {order:?}");
                }
                if l == 0 && k == 0 {
                    let partner = (0..48u64)
                        .find(|&g| decomp4(g, strat, order) == (s, i, 1, 0))
                        .unwrap();
                    assert_eq!(partner - gid, ks as u64, "{strat:?} {order:?}");
                }
            }
        }
    }
}
