//! One-loop Parallelism (1LP, Section III-A): one work-item per target
//! site, executing the full `|l| x |k| x |i| x |j|` loop nest.

use super::common::{
    effective_gid, link_sign, load_b_vec, row_term, spill_load, spill_store, DevTables,
};
use crate::strategy::{IndexStyle, KernelConfig};
use core::marker::PhantomData;
use gpu_sim::{Kernel, KernelResources, Lane};
use milc_complex::ComplexField;

/// The 1LP kernel.
pub struct OneLpKernel<C> {
    cfg: KernelConfig,
    t: DevTables,
    num_groups: u64,
    _c: PhantomData<C>,
}

impl<C: ComplexField> OneLpKernel<C> {
    /// Build the kernel for a configuration over device tables.
    pub fn new(cfg: KernelConfig, t: DevTables, num_groups: u64) -> Self {
        Self {
            cfg,
            t,
            num_groups,
            _c: PhantomData,
        }
    }
}

impl<C: ComplexField> Kernel for OneLpKernel<C> {
    fn name(&self) -> &str {
        "1LP"
    }

    fn resources(&self, _local_size: u32) -> KernelResources {
        KernelResources {
            registers_per_item: self.cfg.registers_per_item() + C::EXTRA_REGISTERS,
            local_mem_bytes_per_group: 0,
        }
    }

    fn local_size_multiple(&self) -> u32 {
        self.cfg.strategy.local_size_multiple(self.cfg.order)
    }

    fn run_phase(&self, _phase: usize, lane: &mut Lane<'_>) {
        let t = &self.t;
        let composed = self.cfg.index_style == IndexStyle::Composed;
        let gid = effective_gid(lane, composed, self.num_groups, 1);
        if gid >= t.half_volume {
            return;
        }
        let s = lane.ld_global_u32(t.target_addr(gid)) as u64;
        spill_store(lane, t, self.cfg.spills_per_item);

        let mut acc = [C::zero(); 3];
        for l in 0..4usize {
            let sign = link_sign(l);
            for k in 0..4u64 {
                let src = lane.ld_global_u32(t.nbr_addr(l, s, k)) as u64;
                let bv = load_b_vec::<C>(lane, t, src);
                for (i, a) in acc.iter_mut().enumerate() {
                    *a = row_term(lane, t, l, s, k, i as u64, &bv, sign, *a);
                }
            }
        }

        spill_load(lane, t, self.cfg.spills_per_item);
        for (i, a) in acc.iter().enumerate() {
            lane.st_global_c64(t.c_addr(gid, i as u64), a.re(), a.im());
        }
    }
}
