//! Shared device-side pieces of all Dslash kernels: buffer addressing,
//! complex loads through the [`Lane`] API, the work-group local-memory
//! layout, index-style handling and the register-spill model.

use gpu_sim::Lane;
use milc_complex::ComplexField;
use milc_lattice::recon::{decode, Recon};
use milc_lattice::DeviceLayout;

/// Bytes of one local `double_complex` element (two f64).
pub const LOCAL_ELEM_BYTES: u32 = 16;

/// How a kernel maps a work-group-local `double_complex` element index
/// to a byte offset in local memory.
///
/// The paper's reduction kernels store partial sums densely
/// (element `e` at byte `16·e`), which is exactly the 16-byte-stride
/// pattern the bank model charges as a 4-way conflict: each 4-byte
/// phase of a warp access lands on only 8 of the 32 banks.  The two
/// classic remedies — both QUDA staples, and both named by the CUDA
/// guide ("use swizzling or padding") — are expressible here:
///
/// * [`SharedLayout::Padded`] inserts spare words between elements
///   (the `smem[32][33]` trick at word granularity): with a stride of
///   5 words per element, `gcd(5, 32) = 1` spreads every warp phase
///   over all 32 banks at the cost of 25% more local memory.
/// * [`SharedLayout::Swizzled`] XORs the element's sub-chunk group
///   index into its word offset inside 32-element chunks.  A plain
///   in-place XOR of a dense 16-byte layout cannot be conflict-free
///   (contiguous 16-byte blocks tiling an interval can only start on
///   8 bank residues), so each 32-element chunk carries one spare
///   element-slot of pad: ~3% more local memory for the same
///   conflict-free banks as padding.
///
/// Every mapping is monotonic and injective on the element range, and
/// — because the analyzer's residue period is always a multiple of the
/// warp size — stays *affine* in the residue-block index, so the
/// static footprint fitter resolves swizzled addresses exactly (no
/// dynamic fallback) and the affine-mod-bank normal form can prove the
/// conflict count symbolically.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SharedLayout {
    /// Dense: element `e` at byte `16·e` (the paper's layout).
    Flat,
    /// Element `e` at byte `4·stride_elems·e`: `stride_elems` is the
    /// element stride in 4-byte bank words (≥ 4; 4 would be dense).
    Padded {
        /// Words between consecutive elements' starts (5 = one pad word).
        stride_elems: u32,
    },
    /// XOR-swizzle inside 32-element chunks: element `e = 32c + r` at
    /// `chunk_stride·c + (16·r ⊕ 4·g)` where `g` is the *top*
    /// `xor_bits` bits of the 2-bit sub-chunk group index `r >> 3`
    /// (clamped to the 2 group bits a chunk has) and
    /// `chunk_stride = 512 + 4·2^xor_bits`.  Taking the top bits keeps
    /// the perturbation monotone in `r`, which is what makes the
    /// mapping injective — perturbing by the *low* group bit collapses
    /// back to 0 mid-chunk and aliases (see the `AliasingSwizzle`
    /// defect fixture for the unpadded variant of that bug).
    Swizzled {
        /// How many group bits participate in the swizzle (0 = flat,
        /// 1 = half the conflicts, 2 = conflict-free).
        xor_bits: u32,
    },
}

impl SharedLayout {
    /// The layouts the autotuner sweeps: the paper's dense layout plus
    /// the canonical padded (one spare word) and fully swizzled forms.
    pub const TUNABLE: [SharedLayout; 3] = [
        SharedLayout::Flat,
        SharedLayout::Padded { stride_elems: 5 },
        SharedLayout::Swizzled { xor_bits: 2 },
    ];

    /// Byte offset of local element `e` under this layout.
    #[inline]
    pub fn offset(self, e: u32) -> u32 {
        match self {
            SharedLayout::Flat => e * LOCAL_ELEM_BYTES,
            SharedLayout::Padded { stride_elems } => 4 * stride_elems.max(4) * e,
            SharedLayout::Swizzled { xor_bits } => {
                // Only bits 3..5 of an element index vary within a
                // 32-element chunk, so at most 2 bits participate.
                let bits = xor_bits.min(2);
                if bits == 0 {
                    return e * LOCAL_ELEM_BYTES;
                }
                let chunk_stride = 512 + 4 * (1 << bits);
                let r = e & 31;
                // XOR the top `bits` of the group index into the (zero)
                // low word bits.  The top bits keep the perturbation
                // monotone in `r` — injectivity; the low bit alone
                // would drop back to 0 mid-chunk and alias.
                chunk_stride * (e >> 5) + ((16 * r) ^ (4 * ((r >> 3) >> (2 - bits))))
            }
        }
    }

    /// Local-memory bytes a group of `elems` elements needs.  Every
    /// layout is monotonic, so the last element's end is the extent.
    #[inline]
    pub fn required_bytes(self, elems: u32) -> u32 {
        if elems == 0 {
            return 0;
        }
        self.offset(elems - 1) + LOCAL_ELEM_BYTES
    }

    /// Short tag for labels, cache keys and report columns.
    pub fn tag(self) -> String {
        match self {
            SharedLayout::Flat => "flat".to_string(),
            SharedLayout::Padded { stride_elems } => format!("pad{stride_elems}"),
            SharedLayout::Swizzled { xor_bits } => format!("xor{xor_bits}"),
        }
    }

    /// Parse a [`Self::tag`] back (tune-cache round trip).
    pub fn from_tag(tag: &str) -> Option<SharedLayout> {
        if tag == "flat" {
            return Some(SharedLayout::Flat);
        }
        if let Some(n) = tag.strip_prefix("pad") {
            return n
                .parse()
                .ok()
                .map(|stride_elems| SharedLayout::Padded { stride_elems });
        }
        if let Some(n) = tag.strip_prefix("xor") {
            return n
                .parse()
                .ok()
                .map(|xor_bits| SharedLayout::Swizzled { xor_bits });
        }
        None
    }
}

/// Device addresses of every buffer a Dslash kernel touches.
///
/// Mirrors the kernel arguments of the SYCL implementation: four gauge
/// arrays (one per link type `l`, Section IV-D7's layout), four
/// neighbor tables (one per link type), the source vector `B`, the
/// output `C`, the target-site gather table and (for the spill model)
/// a thread-local scratch area.
#[derive(Copy, Clone, Debug)]
pub struct DevTables {
    /// Base address of gauge array `l` (`l = 0..4`).
    pub u: [u64; 4],
    /// Base address of the neighbor table for link type `l`
    /// (`u32[volume * 4]`, indexed `s * 4 + k`).
    pub nbr: [u64; 4],
    /// Source vector `B` (`complex[volume * 3]`).
    pub b: u64,
    /// Output vector `C` (`complex[half_volume * 3]`).
    pub c: u64,
    /// Target-site gather table (`u32[half_volume]`): checkerboard index
    /// to lexicographic site, the MILC-style parity gather.
    pub target: u64,
    /// Thread-local spill scratch base (see [`spill_store`]).
    pub spill: u64,
    /// Number of spill slots (bounds the reuse window).
    pub spill_slots: u64,
    /// Sites of one parity.
    pub half_volume: u64,
    /// Gauge storage scheme: `Recon::R18` is the paper's uncompressed
    /// layout; `R12`/`R9` enable the compressed-gauge extension (the
    /// QUDA feature the paper's SYCL implementation lacked,
    /// Section IV-D3).
    pub recon: Recon,
}

impl DevTables {
    /// Address of `U[l][s][k][i][j]` (valid for the uncompressed R18
    /// layout only).
    #[inline]
    pub fn u_addr(&self, l: usize, s: u64, k: u64, i: u64, j: u64) -> u64 {
        debug_assert_eq!(self.recon, Recon::R18);
        self.u[l] + ((s * 4 + k) * DeviceLayout::MAT_ELEMS as u64 + i * 3 + j) * 16
    }

    /// Base address of the encoded link `(l, s, k)` under the current
    /// recon scheme.
    #[inline]
    pub fn u_link_addr(&self, l: usize, s: u64, k: u64) -> u64 {
        self.u[l] + (s * 4 + k) * self.recon.reals() as u64 * 8
    }

    /// Address of neighbor-table entry `(s, k)` for link type `l`.
    #[inline]
    pub fn nbr_addr(&self, l: usize, s: u64, k: u64) -> u64 {
        self.nbr[l] + (s * 4 + k) * 4
    }

    /// Address of `B[s][j]`.
    #[inline]
    pub fn b_addr(&self, s: u64, j: u64) -> u64 {
        self.b + (s * 3 + j) * 16
    }

    /// Address of `C[cb][i]`.
    #[inline]
    pub fn c_addr(&self, cb: u64, i: u64) -> u64 {
        self.c + (cb * 3 + i) * 16
    }

    /// Address of the target-site table entry for checkerboard index `cb`.
    #[inline]
    pub fn target_addr(&self, cb: u64) -> u64 {
        self.target + cb * 4
    }
}

/// Sign of link type `l` in Eq. (1): forward terms (+), backward (−).
#[inline]
pub fn link_sign(l: usize) -> f64 {
    if l < 2 {
        1.0
    } else {
        -1.0
    }
}

/// Load one complex element as type `C` (two 8-byte global loads).
#[inline]
pub fn ld_c<C: ComplexField>(lane: &mut Lane<'_>, addr: u64) -> C {
    let (re, im) = lane.ld_global_c64(addr);
    C::new(re, im)
}

/// Load the 3-component source vector at site `s`.
#[inline]
pub fn load_b_vec<C: ComplexField>(lane: &mut Lane<'_>, t: &DevTables, s: u64) -> [C; 3] {
    [
        ld_c(lane, t.b_addr(s, 0)),
        ld_c(lane, t.b_addr(s, 1)),
        ld_c(lane, t.b_addr(s, 2)),
    ]
}

/// Load row `i` of `U[l][s][k]` under the problem's gauge storage
/// scheme.  Uncompressed (R18) loads exactly the six 8-byte words of
/// the row, as the paper's kernels do; the compressed schemes load the
/// whole encoded payload and reconstruct in registers (charging the
/// scheme's decode FLOPs), exactly like QUDA's in-kernel reconstruction
/// — the extension Section IV-D3 notes the SYCL implementation lacked.
#[inline]
pub fn load_u_row<C: ComplexField>(
    lane: &mut Lane<'_>,
    t: &DevTables,
    l: usize,
    s: u64,
    k: u64,
    i: u64,
) -> [C; 3] {
    match t.recon {
        Recon::R18 => [
            ld_c(lane, t.u_addr(l, s, k, i, 0)),
            ld_c(lane, t.u_addr(l, s, k, i, 1)),
            ld_c(lane, t.u_addr(l, s, k, i, 2)),
        ],
        scheme => {
            let reals = scheme.reals();
            let base = t.u_link_addr(l, s, k);
            let mut data = [0.0f64; 18];
            for (idx, slot) in data.iter_mut().enumerate().take(reals) {
                *slot = lane.ld_global_f64(base + idx as u64 * 8);
            }
            lane.flops(scheme.decode_flops());
            let m = decode(&data[..reals], scheme);
            let i = i as usize;
            [
                C::new(m.e[i][0].re, m.e[i][0].im),
                C::new(m.e[i][1].re, m.e[i][1].im),
                C::new(m.e[i][2].re, m.e[i][2].im),
            ]
        }
    }
}

/// `acc + sign * (row of U[l][s][k]) · bv`, recording loads and FLOPs
/// exactly as the inner `j` loop of the paper's kernels executes them.
/// (The argument list mirrors the kernel's loop indices one-to-one.)
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn row_term<C: ComplexField>(
    lane: &mut Lane<'_>,
    t: &DevTables,
    l: usize,
    s: u64,
    k: u64,
    i: u64,
    bv: &[C; 3],
    sign: f64,
    mut acc: C,
) -> C {
    let row = load_u_row::<C>(lane, t, l, s, k, i);
    for j in 0..3 {
        let prod = row[j] * bv[j];
        if sign > 0.0 {
            acc += prod;
        } else {
            acc -= prod;
        }
        lane.flops((C::MUL_FLOPS + 2) as u32);
    }
    acc
}

/// Resolve the work-item's *effective* global id under an index style.
///
/// `Direct` is `get_global_id()`: one index op, identity mapping.
/// `Composed` models the unoptimized SYCLomatic expression
/// `get_local_range(2) * get_group(2) + get_local_id(2)` over a 3-D
/// index space.  The paper measures a 10.0–12.2% penalty for it and
/// attributes it to the work-item-to-data mapping: "the mapping of
/// work-item indices to data varies with the indexing functions
/// employed, resulting in a more localized memory access pattern in the
/// first case" (Section IV-D6).  The model realizes exactly that: the
/// composed 3-D linearization (i) permutes which work-group handles
/// which site range and (ii) transposes the site blocks *within* each
/// group, so the 2–3 sites one warp touches are no longer adjacent in
/// memory — each warp-level gauge load then spans three scattered
/// regions instead of one contiguous one, and the lost coalescing is
/// measured by the simulator, not asserted.  `site_block` is the number
/// of consecutive work-items that share one target site (12 for 3LP,
/// 48 for 4LP, 1/3 for 1LP/2LP); blocks stay intact so the local-memory
/// reductions remain correct.
#[inline]
pub fn effective_gid(lane: &mut Lane<'_>, composed: bool, num_groups: u64, site_block: u32) -> u64 {
    if !composed {
        lane.iops(1);
        lane.global_id()
    } else {
        lane.iops(7);
        let g = permute_group(lane.group_id(), num_groups);
        let lid = lane.local_id();
        let nblocks = (lane.local_size() / site_block).max(1);
        let b = lid / site_block;
        let eff_b = scatter_block(b, nblocks);
        let eff_lid = eff_b * site_block + lid % site_block;
        g * lane.local_size() as u64 + eff_lid as u64
    }
}

/// Bijective intra-group block scattering: stride by a value coprime
/// with the block count so blocks that are adjacent in local-id space
/// land far apart in data space.
#[inline]
pub fn scatter_block(b: u32, nblocks: u32) -> u32 {
    if nblocks <= 2 {
        return b;
    }
    // A stride near sqrt(n) maximizes the scattering of short runs.
    let mut stride = (nblocks as f64).sqrt().round() as u32;
    stride = stride.max(2);
    while gcd(stride as u64, nblocks as u64) != 1 {
        stride += 1;
    }
    (b * stride) % nblocks
}

/// Bijective group permutation used by the composed-index model:
/// a fixed odd stride scatters consecutive groups across the iteration
/// space, like a 3-D range's row-major linearization does.
#[inline]
pub fn permute_group(g: u64, num_groups: u64) -> u64 {
    if num_groups <= 1 {
        return g;
    }
    let mut stride = 769 % num_groups;
    if stride == 0 {
        stride = 1;
    }
    while gcd(stride, num_groups) != 1 {
        stride += 1;
    }
    (g * stride) % num_groups
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Byte address of spill word `w` of the item occupying `slot`:
/// CUDA thread-local memory is *warp-interleaved* — word `w` of the 32
/// lanes of a warp occupies one contiguous 256-byte stripe — so spill
/// traffic is perfectly coalesced (2 lines per warp access).  Slots are
/// recycled across non-resident items, keeping the scratch area small
/// and cache-hot, exactly like the hardware's local-memory window.
#[inline]
fn spill_addr(t: &DevTables, slot: u64, spills: u32, word: u64) -> u64 {
    let warp = slot / 32;
    let lane_in_warp = slot % 32;
    let words_per_item = spills as u64 * 2;
    t.spill + (warp * words_per_item + word) * 256 + lane_in_warp * 8
}

/// Store the register-spill pairs of one work-item (thread-local memory
/// traffic of an uncapped compilation; Section IV-D4).  Call at the top
/// of the heavy phase; pair with [`spill_load`] at the bottom.
#[inline]
pub fn spill_store(lane: &mut Lane<'_>, t: &DevTables, spills: u32) {
    if spills == 0 {
        return;
    }
    let slot = lane.global_id() % t.spill_slots;
    for w in 0..spills as u64 * 2 {
        lane.st_global_f64(spill_addr(t, slot, spills, w), 0.0);
    }
}

/// Reload the spilled words (values are irrelevant to the computation;
/// the traffic is what the model needs).
#[inline]
pub fn spill_load(lane: &mut Lane<'_>, t: &DevTables, spills: u32) {
    if spills == 0 {
        return;
    }
    let slot = lane.global_id() % t.spill_slots;
    for w in 0..spills as u64 * 2 {
        let _ = lane.ld_global_f64(spill_addr(t, slot, spills, w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_consistent_with_device_layout() {
        let t = DevTables {
            u: [0x1000, 0x2000, 0x3000, 0x4000],
            nbr: [0x5000, 0x6000, 0x7000, 0x8000],
            b: 0x9000,
            c: 0xA000,
            target: 0xB000,
            spill: 0xC000,
            spill_slots: 16,
            half_volume: 8,
            recon: Recon::R18,
        };
        // u element stride: j -> 16 B, i -> 48 B, k -> 144 B, s -> 576 B.
        assert_eq!(t.u_addr(0, 0, 0, 0, 1) - t.u_addr(0, 0, 0, 0, 0), 16);
        assert_eq!(t.u_addr(0, 0, 0, 1, 0) - t.u_addr(0, 0, 0, 0, 0), 48);
        assert_eq!(t.u_addr(0, 0, 1, 0, 0) - t.u_addr(0, 0, 0, 0, 0), 144);
        assert_eq!(t.u_addr(0, 1, 0, 0, 0) - t.u_addr(0, 0, 0, 0, 0), 576);
        assert_eq!(t.u_addr(2, 0, 0, 0, 0), 0x3000);
        assert_eq!(t.b_addr(2, 1) - t.b_addr(2, 0), 16);
        assert_eq!(t.c_addr(1, 0) - t.c_addr(0, 0), 48);
        assert_eq!(t.nbr_addr(1, 3, 2), 0x6000 + 14 * 4);
        assert_eq!(t.target_addr(5), 0xB000 + 20);
    }

    #[test]
    fn signs() {
        assert_eq!(link_sign(0), 1.0);
        assert_eq!(link_sign(1), 1.0);
        assert_eq!(link_sign(2), -1.0);
        assert_eq!(link_sign(3), -1.0);
    }

    #[test]
    fn group_permutation_is_bijective() {
        for n in [1u64, 2, 7, 96, 769, 1538, 4096] {
            let mut seen = vec![false; n as usize];
            for g in 0..n {
                let p = permute_group(g, n);
                assert!(p < n);
                assert!(!seen[p as usize], "collision at {g} for n={n}");
                seen[p as usize] = true;
            }
        }
    }

    #[test]
    fn scatter_block_is_bijective() {
        for n in [1u32, 2, 3, 8, 16, 64, 85] {
            let mut seen = vec![false; n as usize];
            for b in 0..n {
                let s = scatter_block(b, n);
                assert!(s < n);
                assert!(!seen[s as usize], "collision at {b} for n={n}");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn scatter_block_separates_neighbors() {
        // Adjacent blocks must land at least a warp's worth of blocks
        // apart for typical group sizes (768 / 12 = 64 blocks).
        let n = 64;
        let d = (scatter_block(1, n) as i64 - scatter_block(0, n) as i64).unsigned_abs();
        assert!(d >= 4, "blocks too close: {d}");
    }

    #[test]
    fn shared_layouts_are_injective_and_monotonic() {
        let half = SharedLayout::Swizzled { xor_bits: 1 };
        for layout in SharedLayout::TUNABLE.into_iter().chain([half]) {
            let mut prev_end = 0u32;
            for e in 0..1024u32 {
                let off = layout.offset(e);
                assert!(
                    off >= prev_end,
                    "{} element {e} at {off} overlaps previous end {prev_end}",
                    layout.tag()
                );
                prev_end = off + LOCAL_ELEM_BYTES;
            }
            assert_eq!(layout.required_bytes(1024), prev_end);
            assert_eq!(layout.required_bytes(0), 0);
        }
    }

    #[test]
    fn swizzled_warp_phases_are_conflict_free() {
        // Every 4-byte phase of a 32-element warp access must land on
        // 32 distinct banks under the full swizzle (and under pad5).
        for layout in [
            SharedLayout::Swizzled { xor_bits: 2 },
            SharedLayout::Padded { stride_elems: 5 },
        ] {
            for base in [0u32, 32, 64, 96] {
                for phase in 0..4u32 {
                    let mut banks = std::collections::HashSet::new();
                    for lane in 0..32u32 {
                        let word = layout.offset(base + lane) / 4 + phase;
                        assert!(
                            banks.insert(word % 32),
                            "{} phase {phase} collides at lane {lane}",
                            layout.tag()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn half_swizzle_halves_the_conflict() {
        // xor1 spreads each phase over 16 banks with exactly 2 words
        // apiece: a 2-way conflict, half of flat's 4-way.
        let layout = SharedLayout::Swizzled { xor_bits: 1 };
        for phase in 0..4u32 {
            let mut per_bank = std::collections::HashMap::new();
            for lane in 0..32u32 {
                let word = layout.offset(lane) / 4 + phase;
                *per_bank.entry(word % 32).or_insert(0u32) += 1;
            }
            assert_eq!(per_bank.len(), 16, "phase {phase}");
            assert!(per_bank.values().all(|&c| c == 2), "phase {phase}");
        }
    }

    #[test]
    fn degenerate_layouts_collapse_to_flat() {
        for e in 0..256u32 {
            assert_eq!(SharedLayout::Swizzled { xor_bits: 0 }.offset(e), e * 16);
            assert_eq!(SharedLayout::Flat.offset(e), e * 16);
        }
    }

    #[test]
    fn layout_tags_round_trip() {
        for layout in [
            SharedLayout::Flat,
            SharedLayout::Padded { stride_elems: 5 },
            SharedLayout::Swizzled { xor_bits: 1 },
            SharedLayout::Swizzled { xor_bits: 2 },
        ] {
            assert_eq!(SharedLayout::from_tag(&layout.tag()), Some(layout));
        }
        assert_eq!(SharedLayout::from_tag("nope"), None);
    }

    #[test]
    fn group_permutation_scatters() {
        // Consecutive groups must land far apart (locality destruction).
        let n = 4096;
        let d = (permute_group(1, n) as i64 - permute_group(0, n) as i64).unsigned_abs();
        assert!(d > 64, "stride too small: {d}");
    }
}
