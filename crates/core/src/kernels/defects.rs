//! Deliberately broken kernels exercising the simulator's sanitizer.
//!
//! Each fixture is a *minimal* mutant of one of the shipped Dslash
//! kernels, reproducing a bug class the paper's parallel strategies must
//! avoid (Section III-C's race discussion) and that the sanitizer must
//! classify:
//!
//! * [`BrokenBarrierThreeLp1`] — 3LP-1 with the `group_barrier` deleted:
//!   the single-writer collapse reads local-memory partials the other
//!   work-items are still writing (**race**, plus a
//!   `LocalMemNoBarrier` **lint**);
//! * [`PlainStoreThreeLp3`] — 3LP-3 with the `atomic_ref` accumulation
//!   replaced by a plain read-modify-write: the four `k`-items of one
//!   site update `C(i, s)` unordered (**race**, exactly the bug the
//!   atomics exist to prevent);
//! * [`OobGaugeIndex`] — an index-arithmetic overflow that walks past
//!   the arena's last allocation (**memcheck**: the class of bug the
//!   composed MILC index expressions invite);
//! * [`UninitCRead`] — accumulates into `C` without the host having
//!   zeroed it first, i.e. a missing `zero_output()` (**uninit**);
//! * [`AliasingSwizzle`] — a hand-rolled local-memory swizzle that XORs
//!   the group bits *in place* without chunk padding: the mapping is
//!   not injective (element 31's 16-byte block overlaps element 32's),
//!   so two lanes write the same local bytes in one phase (**race**,
//!   the bug [`SharedLayout::Swizzled`]'s chunk pad exists to prevent,
//!   and one both the dynamic racecheck and the static local-race
//!   proof must flag).
//!
//! The fixtures still declare lane lockstep correctly (`set_path`), so
//! the only findings they produce are the ones they are built to
//! produce; tests can assert *exactly one* classified finding under a
//! single-check [`SanitizerConfig`](gpu_sim::SanitizerConfig).

use super::common::{DevTables, SharedLayout};
use crate::problem::MAX_SPILLS;
use gpu_sim::{Kernel, KernelResources, Lane};
use milc_lattice::{NDIM, NROW};

/// Registers the slim defect bodies plausibly need.
const DEFECT_REGISTERS: u32 = 32;

/// 3LP-1 (k-major) with its barrier removed: one phase stores each
/// item's partial to local memory *and* lets the `k == 0` item collapse
/// the four partials in the same breath — no ordering edge between the
/// writers and the reader.
pub struct BrokenBarrierThreeLp1 {
    t: DevTables,
    layout: SharedLayout,
}

impl BrokenBarrierThreeLp1 {
    /// Build over the problem's device tables (flat local layout).
    pub fn new(t: DevTables) -> Self {
        Self::with_layout(t, SharedLayout::Flat)
    }

    /// Build with an explicit local layout: the race is layout-blind
    /// (every layout is injective, so the reader/writer overlap — not
    /// an address collision — is what both checkers must see).
    pub fn with_layout(t: DevTables, layout: SharedLayout) -> Self {
        Self { t, layout }
    }
}

impl Kernel for BrokenBarrierThreeLp1 {
    fn name(&self) -> &str {
        "defect/broken-barrier-3lp1"
    }

    // num_phases defaults to 1: the deleted barrier.

    fn resources(&self, local_size: u32) -> KernelResources {
        KernelResources {
            registers_per_item: DEFECT_REGISTERS,
            local_mem_bytes_per_group: self.layout.required_bytes(local_size),
        }
    }

    fn local_size_multiple(&self) -> u32 {
        (NROW * NDIM) as u32 // k-major site block, as in the real 3LP-1
    }

    fn run_phase(&self, _phase: usize, lane: &mut Lane<'_>) {
        let t = &self.t;
        let gid = lane.global_id();
        lane.iops(3);
        let cb = gid / 12;
        let i = gid % 3;
        let k = (gid / 3) % 4;
        if cb >= t.half_volume {
            return;
        }
        let lid = lane.local_id();
        // The "partial" (its value is irrelevant to the race).
        lane.st_local_c64(self.layout.offset(lid), (gid % 7) as f64, 0.0);
        // ... and, with no barrier in between, the collapse:
        if k == 0 {
            lane.set_path(1);
            let (re0, im0) = lane.ld_local_c64(self.layout.offset(lid));
            let mut re = re0;
            let mut im = im0;
            for kk in 1..4u32 {
                let (r, m) = lane.ld_local_c64(self.layout.offset(lid + 3 * kk));
                re += r;
                im += m;
                lane.flops(2);
            }
            lane.st_global_c64(t.c_addr(cb, i), re, im);
        } else {
            lane.set_path(2);
        }
    }
}

/// The swizzle bug the chunk pad prevents: XOR the sub-chunk group bits
/// straight into the dense 16-byte layout.  `off(e) = 16e ^ ((e>>3 & 3)
/// << 2)` is *not* injective — element 31 maps to bytes `[508, 524)`
/// and element 32 to `[512, 528)` — so adjacent chunks' boundary lanes
/// write overlapping local bytes in the same phase.
pub struct AliasingSwizzle {
    t: DevTables,
}

impl AliasingSwizzle {
    /// Build over the problem's device tables.
    pub fn new(t: DevTables) -> Self {
        Self { t }
    }

    /// The broken mapping (kept separate so tests can cite it).
    pub fn aliasing_offset(e: u32) -> u32 {
        (e * 16) ^ (((e >> 3) & 3) << 2)
    }
}

impl Kernel for AliasingSwizzle {
    fn name(&self) -> &str {
        "defect/aliasing-swizzle"
    }

    // One phase: the overlap needs no missing barrier, only two lanes
    // whose blocks intersect.

    fn resources(&self, local_size: u32) -> KernelResources {
        KernelResources {
            registers_per_item: DEFECT_REGISTERS,
            // The XOR perturbs at most +12 bytes past the dense extent.
            local_mem_bytes_per_group: local_size * 16 + 16,
        }
    }

    fn local_size_multiple(&self) -> u32 {
        (NROW * NDIM) as u32
    }

    fn run_phase(&self, _phase: usize, lane: &mut Lane<'_>) {
        let gid = lane.global_id();
        if gid / 12 >= self.t.half_volume {
            return;
        }
        lane.iops(2);
        let lid = lane.local_id();
        lane.st_local_c64(Self::aliasing_offset(lid), (gid % 5) as f64, 1.0);
    }
}

/// 3LP-3 with the relaxed `atomic_ref` accumulation replaced by a plain
/// load-add-store: the four `k`-items of one `(site, i)` pair
/// read-modify-write the same `C(i, s)` element within one phase.
pub struct PlainStoreThreeLp3 {
    t: DevTables,
}

impl PlainStoreThreeLp3 {
    /// Build over the problem's device tables.
    pub fn new(t: DevTables) -> Self {
        Self { t }
    }
}

impl Kernel for PlainStoreThreeLp3 {
    fn name(&self) -> &str {
        "defect/plain-store-3lp3"
    }

    fn num_phases(&self) -> usize {
        2 // initialize, barrier, accumulate — as in the real 3LP-3
    }

    fn resources(&self, _local_size: u32) -> KernelResources {
        KernelResources {
            registers_per_item: DEFECT_REGISTERS,
            local_mem_bytes_per_group: 0,
        }
    }

    fn local_size_multiple(&self) -> u32 {
        (NROW * NDIM) as u32
    }

    fn run_phase(&self, phase: usize, lane: &mut Lane<'_>) {
        let t = &self.t;
        let gid = lane.global_id();
        lane.iops(3);
        let cb = gid / 12;
        let i = gid % 3;
        let k = (gid / 3) % 4;
        if cb >= t.half_volume {
            return;
        }
        if phase == 0 {
            if k == 0 {
                lane.set_path(1);
                lane.st_global_c64(t.c_addr(cb, i), 0.0, 0.0);
            } else {
                lane.set_path(2);
            }
        } else {
            // c[i][s] += term   — plain, where 3LP-3 uses atomic_ref.
            let (re, im) = lane.ld_global_c64(t.c_addr(cb, i));
            lane.flops(2);
            lane.st_global_c64(t.c_addr(cb, i), re + 1.0, im + 1.0);
        }
    }
}

/// A gauge-style indexing bug: the per-item offset is scaled past the
/// end of the arena's *last* allocation (the spill scratch), so the
/// loads land outside every allocation.  Overshooting an interior
/// buffer by a little would land in its 256-byte-aligned neighbour and
/// go unnoticed; the fixture overshoots where nothing follows, which is
/// what the allocation-table check reports.
pub struct OobGaugeIndex {
    t: DevTables,
    /// One past the last allocation: `spill + slots * MAX_SPILLS * 16`.
    oob_base: u64,
}

impl OobGaugeIndex {
    /// Build over the problem's device tables.
    pub fn new(t: DevTables) -> Self {
        let oob_base = t.spill + t.spill_slots * MAX_SPILLS as u64 * 16;
        Self { t, oob_base }
    }
}

impl Kernel for OobGaugeIndex {
    fn name(&self) -> &str {
        "defect/oob-gauge-index"
    }

    fn resources(&self, _local_size: u32) -> KernelResources {
        KernelResources {
            registers_per_item: DEFECT_REGISTERS,
            local_mem_bytes_per_group: 0,
        }
    }

    fn run_phase(&self, _phase: usize, lane: &mut Lane<'_>) {
        let gid = lane.global_id();
        if gid >= self.t.half_volume {
            return;
        }
        lane.iops(1);
        // 8-byte aligned so the *only* defect is the bounds violation.
        let _ = lane.ld_global_f64(self.oob_base + (gid % 8) * 8);
    }
}

/// Accumulation into `C` without the host's `zero_output()`: every item
/// reads its never-written `C(i, s)` element before adding to it.
pub struct UninitCRead {
    t: DevTables,
}

impl UninitCRead {
    /// Build over the problem's device tables.
    pub fn new(t: DevTables) -> Self {
        Self { t }
    }
}

impl Kernel for UninitCRead {
    fn name(&self) -> &str {
        "defect/uninit-c-read"
    }

    fn resources(&self, _local_size: u32) -> KernelResources {
        KernelResources {
            registers_per_item: DEFECT_REGISTERS,
            local_mem_bytes_per_group: 0,
        }
    }

    fn run_phase(&self, _phase: usize, lane: &mut Lane<'_>) {
        let t = &self.t;
        let gid = lane.global_id();
        lane.iops(2);
        let cb = gid / 3;
        let i = gid % 3;
        if cb >= t.half_volume {
            return;
        }
        let (re, im) = lane.ld_global_c64(t.c_addr(cb, i));
        lane.flops(2);
        lane.st_global_c64(t.c_addr(cb, i), re + 1.0, im + 1.0);
    }
}
