//! Two-loop Parallelism (2LP, Section III-B): three work-items per
//! target site, one matrix row each — `int s = global_id / nrow;
//! int i = global_id % nrow;` — no cross-item dependence, so still a
//! single phase.

use super::common::{
    effective_gid, link_sign, load_b_vec, row_term, spill_load, spill_store, DevTables,
};
use crate::strategy::{IndexStyle, KernelConfig};
use core::marker::PhantomData;
use gpu_sim::{Kernel, KernelResources, Lane};
use milc_complex::ComplexField;

/// The 2LP kernel.
pub struct TwoLpKernel<C> {
    cfg: KernelConfig,
    t: DevTables,
    num_groups: u64,
    _c: PhantomData<C>,
}

impl<C: ComplexField> TwoLpKernel<C> {
    /// Build the kernel for a configuration over device tables.
    pub fn new(cfg: KernelConfig, t: DevTables, num_groups: u64) -> Self {
        Self {
            cfg,
            t,
            num_groups,
            _c: PhantomData,
        }
    }
}

impl<C: ComplexField> Kernel for TwoLpKernel<C> {
    fn name(&self) -> &str {
        "2LP"
    }

    fn resources(&self, _local_size: u32) -> KernelResources {
        KernelResources {
            registers_per_item: self.cfg.registers_per_item() + C::EXTRA_REGISTERS,
            local_mem_bytes_per_group: 0,
        }
    }

    fn local_size_multiple(&self) -> u32 {
        self.cfg.strategy.local_size_multiple(self.cfg.order)
    }

    fn run_phase(&self, _phase: usize, lane: &mut Lane<'_>) {
        let t = &self.t;
        let composed = self.cfg.index_style == IndexStyle::Composed;
        let gid = effective_gid(lane, composed, self.num_groups, 3);
        lane.iops(2); // s = gid / nrow; i = gid % nrow
        let cb = gid / 3;
        let i = gid % 3;
        if cb >= t.half_volume {
            return;
        }
        let s = lane.ld_global_u32(t.target_addr(cb)) as u64;
        spill_store(lane, t, self.cfg.spills_per_item);

        let mut acc = C::zero();
        for l in 0..4usize {
            let sign = link_sign(l);
            for k in 0..4u64 {
                let src = lane.ld_global_u32(t.nbr_addr(l, s, k)) as u64;
                let bv = load_b_vec::<C>(lane, t, src);
                acc = row_term(lane, t, l, s, k, i, &bv, sign, acc);
            }
        }

        spill_load(lane, t, self.cfg.spills_per_item);
        lane.st_global_c64(t.c_addr(cb, i), acc.re(), acc.im());
    }
}
