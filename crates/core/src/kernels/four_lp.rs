//! Four-loop Parallelism (4LP, Section III-D): 48 work-items per target
//! site — one `(i, k, l)` triple each — with divergent branches over the
//! four link types and two barriers:
//!
//! * phase 0: each item computes its single row-times-vector term inside
//!   the `l`-branch chain ("all warp threads take the path through the
//!   conditional branches, one branch at a time") and stores it to local
//!   memory;
//! * phase 1 (after the first barrier): the `l == 0` item of each
//!   `(s, i, k)` collapses the four `l`-partials;
//! * phase 2 (after the second barrier): the `l == 0 && k == 0` item
//!   collapses the four `k`-partials and writes `C(i, s)`.
//!
//! 4LP-1 groups items `l`-then-`k` (k-major / i-major orders); 4LP-2
//! groups `k`-then-`l` (l-major / i-major orders), which changes the
//! clustering of same-`l` lanes inside a warp: 12 consecutive for 4LP-1,
//! 3 for 4LP-2 l-major, 1 for 4LP-2 i-major (Section IV-D8).

use super::common::{
    effective_gid, link_sign, load_b_vec, row_term, spill_load, spill_store, DevTables,
    SharedLayout,
};
use super::{decomp4, four_lp_strides};
use crate::strategy::{IndexStyle, KernelConfig, Strategy};
use core::marker::PhantomData;
use gpu_sim::{Kernel, KernelResources, Lane};
use milc_complex::ComplexField;

/// The 4LP kernel (both groupings, all index orders).
pub struct FourLpKernel<C> {
    cfg: KernelConfig,
    t: DevTables,
    num_groups: u64,
    _c: PhantomData<C>,
}

impl<C: ComplexField> FourLpKernel<C> {
    /// Build the kernel for a configuration over device tables.
    pub fn new(cfg: KernelConfig, t: DevTables, num_groups: u64) -> Self {
        debug_assert!(matches!(
            cfg.strategy,
            Strategy::FourLp1 | Strategy::FourLp2
        ));
        Self {
            cfg,
            t,
            num_groups,
            _c: PhantomData,
        }
    }
}

impl<C: ComplexField> Kernel for FourLpKernel<C> {
    fn name(&self) -> &str {
        self.cfg.strategy.name()
    }

    fn num_phases(&self) -> usize {
        3
    }

    fn resources(&self, local_size: u32) -> KernelResources {
        KernelResources {
            registers_per_item: self.cfg.registers_per_item() + C::EXTRA_REGISTERS,
            local_mem_bytes_per_group: self.cfg.shared_layout.required_bytes(local_size),
        }
    }

    fn local_size_multiple(&self) -> u32 {
        self.cfg.strategy.local_size_multiple(self.cfg.order)
    }

    fn run_phase(&self, phase: usize, lane: &mut Lane<'_>) {
        let t = &self.t;
        let composed = self.cfg.index_style == IndexStyle::Composed;
        let gid = effective_gid(lane, composed, self.num_groups, 48);
        lane.iops(4); // the s/i/k/l div-mod chain
        let (cb, i, k, l) = decomp4(gid, self.cfg.strategy, self.cfg.order);
        if cb >= t.half_volume {
            return;
        }
        let lid = lane.local_id();
        let layout: SharedLayout = self.cfg.shared_layout;
        let (l_stride, k_stride) = four_lp_strides(self.cfg.strategy, self.cfg.order);

        match phase {
            0 => {
                // The gather and spills are uniform; the per-l work is the
                // divergent branch chain of the listing (if l == 0 ...
                // else if l == 1 ...).
                let s = lane.ld_global_u32(t.target_addr(cb)) as u64;
                spill_store(lane, t, self.cfg.spills_per_item);
                lane.set_path(1 + l as u32);
                let sign = link_sign(l as usize);
                let src = lane.ld_global_u32(t.nbr_addr(l as usize, s, k)) as u64;
                let bv = load_b_vec::<C>(lane, t, src);
                let term = row_term(lane, t, l as usize, s, k, i, &bv, sign, C::zero());
                lane.st_local_c64(layout.offset(lid), term.re(), term.im());
                lane.set_path(0);
                spill_load(lane, t, self.cfg.spills_per_item);
            }
            1 => {
                // First barrier has fired: collapse the l-partials.
                if l == 0 {
                    lane.set_path(1);
                    let (re0, im0) = lane.ld_local_c64(layout.offset(lid));
                    let mut sum = C::new(re0, im0);
                    for ll in 1..4u32 {
                        let (re, im) = lane.ld_local_c64(layout.offset(lid + l_stride * ll));
                        sum += C::new(re, im);
                        lane.flops(2);
                    }
                    lane.st_local_c64(layout.offset(lid), sum.re(), sum.im());
                } else {
                    lane.set_path(2);
                }
            }
            2 => {
                // Second barrier: collapse the k-partials and write C.
                if l == 0 && k == 0 {
                    lane.set_path(1);
                    let (re0, im0) = lane.ld_local_c64(layout.offset(lid));
                    let mut sum = C::new(re0, im0);
                    for kk in 1..4u32 {
                        let (re, im) = lane.ld_local_c64(layout.offset(lid + k_stride * kk));
                        sum += C::new(re, im);
                        lane.flops(2);
                    }
                    lane.st_global_c64(t.c_addr(cb, i), sum.re(), sum.im());
                } else {
                    lane.set_path(2);
                }
            }
            _ => unreachable!("4LP has three phases"),
        }
    }
}
