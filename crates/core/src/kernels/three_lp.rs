//! Three-loop Parallelism (3LP, Section III-C): twelve work-items per
//! target site — `(i, k)` pairs — with a k-carried reduction into
//! `C(i, s)` resolved three ways:
//!
//! * **3LP-1**: partials in work-group local memory, one `group_barrier`,
//!   the `k == 0` item collapses and writes `C` — no atomics, which is
//!   why it wins (Section IV-D2);
//! * **3LP-2**: partials in local memory, `k == 0` initializes `C`,
//!   barrier, then *every* item atomically adds its partial to global
//!   `C(i, s)` (4-way address collisions);
//! * **3LP-3**: no local memory; `k == 0` initializes, barrier, then each
//!   item atomically adds each of its four `l`-terms directly (4 atomic
//!   updates per item, 4-way collisions).

use super::common::{
    effective_gid, link_sign, load_b_vec, row_term, spill_load, spill_store, DevTables,
    SharedLayout,
};
use super::decomp3;
use crate::strategy::{IndexOrder, IndexStyle, KernelConfig, Strategy};
use core::marker::PhantomData;
use gpu_sim::{Kernel, KernelResources, Lane};
use milc_complex::ComplexField;

/// The 3LP kernel (all three race-resolution variants).
pub struct ThreeLpKernel<C> {
    cfg: KernelConfig,
    t: DevTables,
    num_groups: u64,
    _c: PhantomData<C>,
}

impl<C: ComplexField> ThreeLpKernel<C> {
    /// Build the kernel for a configuration over device tables.
    pub fn new(cfg: KernelConfig, t: DevTables, num_groups: u64) -> Self {
        debug_assert!(matches!(
            cfg.strategy,
            Strategy::ThreeLp1 | Strategy::ThreeLp2 | Strategy::ThreeLp3
        ));
        Self {
            cfg,
            t,
            num_groups,
            _c: PhantomData,
        }
    }

    /// Local-memory stride (complex elements) between the k-partials of
    /// one `(site, i)` pair: 3 in k-major order (`k*3 + i` layout),
    /// 1 in i-major order (`i*4 + k`).
    fn k_stride(&self) -> u32 {
        match self.cfg.order {
            IndexOrder::KMajor => 3,
            _ => 1,
        }
    }

    /// Accumulate this item's partial sum over the four link types.
    fn partial(&self, lane: &mut Lane<'_>, s: u64, i: u64, k: u64) -> C {
        let t = &self.t;
        let mut acc = C::zero();
        for l in 0..4usize {
            let sign = link_sign(l);
            let src = lane.ld_global_u32(t.nbr_addr(l, s, k)) as u64;
            let bv = load_b_vec::<C>(lane, t, src);
            acc = row_term(lane, t, l, s, k, i, &bv, sign, acc);
        }
        acc
    }
}

impl<C: ComplexField> Kernel for ThreeLpKernel<C> {
    fn name(&self) -> &str {
        self.cfg.strategy.name()
    }

    fn num_phases(&self) -> usize {
        2
    }

    fn resources(&self, local_size: u32) -> KernelResources {
        KernelResources {
            registers_per_item: self.cfg.registers_per_item() + C::EXTRA_REGISTERS,
            local_mem_bytes_per_group: if self.cfg.strategy.uses_local_mem() {
                self.cfg.shared_layout.required_bytes(local_size)
            } else {
                0
            },
        }
    }

    fn local_size_multiple(&self) -> u32 {
        self.cfg.strategy.local_size_multiple(self.cfg.order)
    }

    fn run_phase(&self, phase: usize, lane: &mut Lane<'_>) {
        let t = &self.t;
        let composed = self.cfg.index_style == IndexStyle::Composed;
        let gid = effective_gid(lane, composed, self.num_groups, 12);
        lane.iops(3); // the s/i/k div-mod chain of the listing
        let (cb, i, k) = decomp3(gid, self.cfg.order);
        if cb >= t.half_volume {
            return;
        }
        let lid = lane.local_id();
        let layout: SharedLayout = self.cfg.shared_layout;

        match self.cfg.strategy {
            Strategy::ThreeLp1 => {
                if phase == 0 {
                    let s = lane.ld_global_u32(t.target_addr(cb)) as u64;
                    spill_store(lane, t, self.cfg.spills_per_item);
                    let acc = self.partial(lane, s, i, k);
                    spill_load(lane, t, self.cfg.spills_per_item);
                    lane.st_local_c64(layout.offset(lid), acc.re(), acc.im());
                } else {
                    // After group_barrier: the k == 0 item of each (s, i)
                    // collapses the four partials and writes C(i, s).
                    if k == 0 {
                        lane.set_path(1);
                        let stride = self.k_stride();
                        let (re0, im0) = lane.ld_local_c64(layout.offset(lid));
                        let mut sum = C::new(re0, im0);
                        for kk in 1..4u32 {
                            let (re, im) = lane.ld_local_c64(layout.offset(lid + stride * kk));
                            sum += C::new(re, im);
                            lane.flops(2);
                        }
                        lane.st_global_c64(t.c_addr(cb, i), sum.re(), sum.im());
                    } else {
                        lane.set_path(2);
                    }
                }
            }
            Strategy::ThreeLp2 => {
                if phase == 0 {
                    let s = lane.ld_global_u32(t.target_addr(cb)) as u64;
                    spill_store(lane, t, self.cfg.spills_per_item);
                    let acc = self.partial(lane, s, i, k);
                    spill_load(lane, t, self.cfg.spills_per_item);
                    lane.st_local_c64(layout.offset(lid), acc.re(), acc.im());
                    // if (k == 0) initialize C(i, s)   [before the barrier]
                    if k == 0 {
                        lane.set_path(1);
                        lane.st_global_c64(t.c_addr(cb, i), 0.0, 0.0);
                    } else {
                        lane.set_path(2);
                    }
                } else {
                    // atomic_ref<double, relaxed, work_group, global>
                    // c_atomic(C(i,s)); c_atomic += c[local_id];
                    let (re, im) = lane.ld_local_c64(layout.offset(lid));
                    lane.atomic_add_global_f64(t.c_addr(cb, i), re);
                    lane.atomic_add_global_f64(t.c_addr(cb, i) + 8, im);
                    lane.flops(2);
                }
            }
            Strategy::ThreeLp3 => {
                if phase == 0 {
                    // if (k == 0) initialize C(i, s); group_barrier.
                    if k == 0 {
                        lane.set_path(1);
                        lane.st_global_c64(t.c_addr(cb, i), 0.0, 0.0);
                    } else {
                        lane.set_path(2);
                    }
                } else {
                    // Per-l atomic accumulation straight into global C.
                    let s = lane.ld_global_u32(t.target_addr(cb)) as u64;
                    spill_store(lane, t, self.cfg.spills_per_item);
                    for l in 0..4usize {
                        let sign = link_sign(l);
                        let src = lane.ld_global_u32(t.nbr_addr(l, s, k)) as u64;
                        let bv = load_b_vec::<C>(lane, t, src);
                        let term = row_term(lane, t, l, s, k, i, &bv, sign, C::zero());
                        lane.atomic_add_global_f64(t.c_addr(cb, i), term.re());
                        lane.atomic_add_global_f64(t.c_addr(cb, i) + 8, term.im());
                        lane.flops(2);
                    }
                    spill_load(lane, t, self.cfg.spills_per_item);
                }
            }
            _ => unreachable!("ThreeLpKernel holds a 3LP strategy"),
        }
    }
}
