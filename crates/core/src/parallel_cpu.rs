//! Rayon-parallel CPU Dslash.
//!
//! The host-side production path: the target sites are independent
//! (the 1LP observation), so the site loop converts directly into a
//! parallel iterator.  Used by the CG-solver example and as the CPU
//! baseline in the benchmark suite.

use crate::reference::dslash_site;
use milc_complex::ComplexField;
use milc_lattice::{ColorVector, GaugeField, NeighborTable, Parity, QuarkField};
use rayon::prelude::*;

/// Parallel staggered Dslash over all sites of `parity`, with a
/// caller-provided neighbor table (build it once, apply many times).
pub fn dslash_par<C: ComplexField>(
    gauge: &GaugeField<C>,
    b: &QuarkField<C>,
    nt: &NeighborTable,
    parity: Parity,
) -> Vec<ColorVector<C>> {
    let lattice = gauge.lattice();
    (0..lattice.half_volume())
        .into_par_iter()
        .map(|cb| {
            let s = lattice.site_of_checkerboard(cb, parity);
            dslash_site(gauge, b, nt, s)
        })
        .collect()
}

/// Parallel Dslash writing into a preallocated output (the allocation-
/// free steady-state form the performance guide recommends).
pub fn dslash_par_into<C: ComplexField>(
    gauge: &GaugeField<C>,
    b: &QuarkField<C>,
    nt: &NeighborTable,
    parity: Parity,
    out: &mut [ColorVector<C>],
) {
    let lattice = gauge.lattice();
    assert_eq!(out.len(), lattice.half_volume(), "output length mismatch");
    out.par_iter_mut().enumerate().for_each(|(cb, slot)| {
        let s = lattice.site_of_checkerboard(cb, parity);
        *slot = dslash_site(gauge, b, nt, s);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dslash;
    use milc_complex::DoubleComplex as Z;
    use milc_lattice::Lattice;

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let lat = Lattice::hypercubic(4);
        let g = GaugeField::<Z>::random(&lat, 31);
        let b = QuarkField::<Z>::random(&lat, 32);
        let nt = NeighborTable::build(&lat);
        let seq = dslash(&g, &b, Parity::Even);
        let par = dslash_par(&g, &b, &nt, Parity::Even);
        assert_eq!(seq, par); // same per-site association order -> bitwise
    }

    #[test]
    fn into_variant_matches() {
        let lat = Lattice::hypercubic(4);
        let g = GaugeField::<Z>::random(&lat, 41);
        let b = QuarkField::<Z>::random(&lat, 42);
        let nt = NeighborTable::build(&lat);
        let par = dslash_par(&g, &b, &nt, Parity::Odd);
        let mut out = vec![ColorVector::<Z>::zero(); lat.half_volume()];
        dslash_par_into(&g, &b, &nt, Parity::Odd, &mut out);
        assert_eq!(par, out);
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn into_variant_validates_length() {
        let lat = Lattice::hypercubic(2);
        let g = GaugeField::<Z>::random(&lat, 1);
        let b = QuarkField::<Z>::random(&lat, 2);
        let nt = NeighborTable::build(&lat);
        let mut out = vec![ColorVector::<Z>::zero(); 3];
        dslash_par_into(&g, &b, &nt, Parity::Even, &mut out);
    }
}
