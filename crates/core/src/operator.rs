//! High-level operator API: the entry point a downstream user adopts.
//!
//! [`SimulatedDslash`] bundles a packed problem, a device, a strategy
//! configuration and persistent warm-cache state behind a two-method
//! interface: [`apply`](SimulatedDslash::apply) runs one Dslash on the
//! simulated device (validating on first use), and accessors expose the
//! performance artifacts (GFLOP/s, the Nsight-style profile, the
//! modelled-time breakdown).
//!
//! ```
//! use gpu_sim::DeviceSpec;
//! use milc_complex::DoubleComplex;
//! use milc_dslash::operator::SimulatedDslash;
//!
//! let device = DeviceSpec::test_small();
//! let mut dslash = SimulatedDslash::<DoubleComplex>::build(4, 42, &device).unwrap();
//! let out = dslash.apply().unwrap().to_vec();
//! assert_eq!(out.len(), 128); // 4^4 / 2 target sites
//! assert!(dslash.last_gflops() > 0.0);
//! ```

use crate::problem::DslashProblem;
use crate::strategy::{IndexOrder, KernelConfig, Strategy};
use crate::theoretical_flops;
use crate::tune::{TuneError, Tuner};
use crate::validate::compare_to_reference;
use gpu_sim::QueueMode;
use gpu_sim::{
    DeviceSpec, DeviceState, LaunchReport, Launcher, ProfileReport, SimError, TimeBreakdown,
    TimingModel,
};
use milc_complex::ComplexField;
use milc_lattice::ColorVector;

/// The paper's recommendation: the configuration that won its study —
/// 3LP-1 (local-memory reduction, no atomics) in k-major order
/// (Section V: "The peak performance is achieved by 3LP-1").
pub fn recommended_config() -> KernelConfig {
    KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor)
}

/// A ready-to-apply Dslash operator on the simulated device.
pub struct SimulatedDslash<'d, C: ComplexField> {
    problem: DslashProblem<C>,
    device: &'d DeviceSpec,
    cfg: KernelConfig,
    local_size: u32,
    state: DeviceState,
    launcher: Launcher<'d>,
    last_report: Option<LaunchReport>,
    validated: bool,
}

impl<'d, C: ComplexField> SimulatedDslash<'d, C> {
    /// Build with a random problem, the paper's recommended strategy and
    /// the largest legal work-group size.
    pub fn build(l: usize, seed: u64, device: &'d DeviceSpec) -> Result<Self, SimError> {
        let problem = DslashProblem::random(l, seed);
        Self::with_problem(problem, recommended_config(), None, device)
    }

    /// Build from an existing problem and explicit configuration.
    /// `local_size = None` picks the largest legal work-group size.
    pub fn with_problem(
        problem: DslashProblem<C>,
        cfg: KernelConfig,
        local_size: Option<u32>,
        device: &'d DeviceSpec,
    ) -> Result<Self, SimError> {
        let hv = problem.lattice().half_volume() as u64;
        let local_size = match local_size {
            Some(ls) => {
                if !cfg.local_size_legal(ls, hv) {
                    return Err(SimError::InvalidLocalSize {
                        local: ls,
                        max: device.max_group_size,
                    });
                }
                ls
            }
            None => *cfg
                .legal_local_sizes(hv)
                .last()
                .ok_or(SimError::InvalidLocalSize {
                    local: 0,
                    max: device.max_group_size,
                })?,
        };
        Ok(Self {
            problem,
            device,
            cfg,
            local_size,
            state: DeviceState::new(device),
            launcher: Launcher::new(device),
            last_report: None,
            validated: false,
        })
    }

    /// Build from an existing problem with the local size chosen by
    /// the autotuner (consulting its cache; sweeping on a miss) instead
    /// of defaulting to the largest legal size.
    pub fn with_problem_tuned(
        mut problem: DslashProblem<C>,
        cfg: KernelConfig,
        device: &'d DeviceSpec,
        tuner: &mut Tuner,
    ) -> Result<Self, TuneError> {
        let decision = tuner.tune(&mut problem, cfg, device, QueueMode::OutOfOrder)?;
        Ok(
            Self::with_problem(problem, cfg, Some(decision.entry.local_size), device)
                .expect("the tuner only selects legal local sizes"),
        )
    }

    /// The configuration in use.
    pub fn config(&self) -> KernelConfig {
        self.cfg
    }

    /// The work-group size in use.
    pub fn local_size(&self) -> u32 {
        self.local_size
    }

    /// The underlying problem.
    pub fn problem(&self) -> &DslashProblem<C> {
        &self.problem
    }

    /// Apply the operator once on the device (caches stay warm across
    /// calls, like an iteration loop).  The first application validates
    /// against the CPU reference; later ones skip the (host-side) check.
    pub fn apply(&mut self) -> Result<Vec<ColorVector<C>>, SimError> {
        self.problem.zero_output();
        let range = self.problem.launch_range(self.cfg, self.local_size);
        let kernel = self.problem.make_kernel(self.cfg, range.num_groups());
        let report = self.launcher.launch_with_state(
            kernel.as_ref(),
            range,
            self.problem.memory(),
            &mut self.state,
        )?;
        self.last_report = Some(report);
        let out = self.problem.read_output();
        if !self.validated {
            let tol = self.problem.validation_tolerance();
            let err = compare_to_reference(&out, self.problem.reference());
            assert!(
                err.rel < tol,
                "device Dslash diverged from the CPU reference: {err:?} (tolerance {tol:e})"
            );
            self.validated = true;
        }
        Ok(out)
    }

    /// Launch report of the most recent application.
    pub fn last_report(&self) -> Option<&LaunchReport> {
        self.last_report.as_ref()
    }

    /// GFLOP/s of the most recent application (theoretical FLOPs over
    /// modelled kernel duration; 0 before the first apply).
    pub fn last_gflops(&self) -> f64 {
        self.last_report.as_ref().map_or(0.0, |r| {
            theoretical_flops(self.problem.lattice()) as f64 / r.duration_us / 1e3
        })
    }

    /// Nsight-style profile of the most recent application.
    pub fn last_profile(&self) -> Option<ProfileReport> {
        self.last_report
            .as_ref()
            .map(|r| ProfileReport::from_launch(self.cfg.label(), r, self.device))
    }

    /// Modelled-time attribution of the most recent application.
    pub fn last_breakdown(&self) -> Option<TimeBreakdown> {
        self.last_report
            .as_ref()
            .map(|r| TimeBreakdown::new(&TimingModel::calibrated(), &r.counters))
    }

    /// Number of device applications so far.
    pub fn applications(&self) -> u64 {
        self.state.launches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milc_complex::DoubleComplex as Z;

    #[test]
    fn build_apply_and_inspect() {
        let device = DeviceSpec::test_small();
        let mut d = SimulatedDslash::<Z>::build(4, 7, &device).unwrap();
        assert_eq!(d.config().strategy, Strategy::ThreeLp1);
        let out1 = d.apply().unwrap();
        assert_eq!(out1.len(), 128);
        assert!(d.last_gflops() > 0.0);
        assert!(d.last_profile().is_some());
        assert!(d.last_breakdown().is_some());
        assert_eq!(d.applications(), 1);

        // Second application: warm caches, identical results.
        let first_misses = d.last_report().unwrap().counters.l2_sector_misses;
        let out2 = d.apply().unwrap();
        assert_eq!(out1, out2);
        assert!(d.last_report().unwrap().counters.l2_sector_misses <= first_misses);
        assert_eq!(d.applications(), 2);
    }

    #[test]
    fn default_local_size_is_largest_legal() {
        let device = DeviceSpec::test_small();
        let d = SimulatedDslash::<Z>::build(4, 8, &device).unwrap();
        let hv = d.problem().lattice().half_volume() as u64;
        let expect = *d.config().legal_local_sizes(hv).last().unwrap();
        assert_eq!(d.local_size(), expect);
    }

    #[test]
    fn explicit_illegal_local_size_rejected() {
        let device = DeviceSpec::test_small();
        let p = DslashProblem::<Z>::random(4, 9);
        let e = SimulatedDslash::with_problem(p, recommended_config(), Some(100), &device);
        assert!(matches!(e, Err(SimError::InvalidLocalSize { .. })));
    }

    #[test]
    fn tuned_constructor_uses_the_tuner_winner() {
        let device = DeviceSpec::test_small();
        let mut tuner = Tuner::in_memory();
        let p = DslashProblem::<Z>::random(4, 10);
        let mut d =
            SimulatedDslash::with_problem_tuned(p, recommended_config(), &device, &mut tuner)
                .unwrap();
        let key = Tuner::key_for(d.problem(), d.config(), &device);
        let cached = tuner
            .cache()
            .lookup(&key)
            .expect("tuning populated the cache");
        assert_eq!(d.local_size(), cached.local_size);
        assert_eq!(tuner.misses(), 1);
        // Applies still work and validate.
        let out = d.apply().unwrap();
        assert_eq!(out.len(), 128);

        // A second tuned build on the same key is a pure cache hit.
        let p2 = DslashProblem::<Z>::random(4, 10);
        let d2 = SimulatedDslash::with_problem_tuned(p2, recommended_config(), &device, &mut tuner)
            .unwrap();
        assert_eq!(d2.local_size(), d.local_size());
        assert_eq!((tuner.hits(), tuner.misses()), (1, 1));
    }

    #[test]
    fn recommendation_matches_the_paper() {
        let c = recommended_config();
        assert_eq!(c.strategy, Strategy::ThreeLp1);
        assert_eq!(c.order, IndexOrder::KMajor);
    }
}
