//! [`DslashProblem`]: owns one benchmark instance — lattice, fields,
//! the device-memory packing, and the lazily-computed CPU reference.

use crate::kernels::build_kernel;
use crate::kernels::common::DevTables;
use crate::reference;
use crate::strategy::KernelConfig;
use gpu_sim::{Buffer, DeviceMemory, Kernel, NdRange};
use milc_complex::ComplexField;
use milc_lattice::recon::{self, Recon};
use milc_lattice::{
    ColorVector, DeviceLayout, GaugeField, Lattice, LinkType, NeighborTable, Parity, QuarkField,
    Su3,
};

/// Maximum spill pairs any kernel configuration may request; sizes the
/// shared spill scratch buffer.
pub const MAX_SPILLS: u32 = 4;

/// Spill slots are recycled like CUDA thread-local memory, which is
/// sized to the *resident* thread count, not the launch size — so the
/// scratch area stays small and cache-hot exactly as real spill traffic
/// does.  8192 slots covers several resident work-groups per SM on the
/// default volume-matched device.
const SPILL_SLOT_CAP: u64 = 8192;

/// A packed benchmark instance.
pub struct DslashProblem<C: ComplexField> {
    lattice: Lattice,
    gauge: GaugeField<C>,
    b: QuarkField<C>,
    parity: Parity,
    recon: Recon,
    mem: DeviceMemory,
    tables: DevTables,
    c_buf: Buffer,
    reference: Option<Vec<ColorVector<C>>>,
}

impl<C: ComplexField> DslashProblem<C> {
    /// Build a random problem on an `l^4` lattice from a seed
    /// (deterministic) and pack it into device memory.
    pub fn random(l: usize, seed: u64) -> Self {
        Self::random_with_recon(l, seed, Recon::R18)
    }

    /// Build a random problem with a compressed gauge layout — the
    /// extension Section IV-D3 notes the paper's SYCL implementation
    /// lacked ("does not include QUDA's gauge compression options as
    /// that is not a current feature of our SYCL implementation").
    /// Every strategy kernel transparently reconstructs in registers.
    pub fn random_with_recon(l: usize, seed: u64, recon: Recon) -> Self {
        let lattice = Lattice::hypercubic(l);
        let gauge = GaugeField::random(&lattice, seed);
        let b = QuarkField::random(&lattice, seed ^ 0x9E37_79B9_7F4A_7C15);
        Self::from_fields_with_recon(gauge, b, Parity::Even, recon)
    }

    /// Build from explicit fields and pack into device memory
    /// (uncompressed gauge layout, as in the paper).
    pub fn from_fields(gauge: GaugeField<C>, b: QuarkField<C>, parity: Parity) -> Self {
        Self::from_fields_with_recon(gauge, b, parity, Recon::R18)
    }

    /// Build from explicit fields with a gauge storage scheme.
    ///
    /// # Panics
    /// Panics if a compressed scheme is requested for links it cannot
    /// represent (recon 9 requires generic SU(3) links; see
    /// [`milc_lattice::recon`]).
    pub fn from_fields_with_recon(
        gauge: GaugeField<C>,
        b: QuarkField<C>,
        parity: Parity,
        recon_scheme: Recon,
    ) -> Self {
        let lattice = gauge.lattice().clone();
        assert_eq!(
            b.lattice(),
            &lattice,
            "gauge and source fields live on different lattices"
        );
        let layout = DeviceLayout::new(&lattice);
        let nt = NeighborTable::build(&lattice);
        let mut mem = DeviceMemory::new();

        // Gauge arrays, one buffer per link type (Section IV-D7 layout
        // for R18; `reals()`-wide encoded records for the compressed
        // extension schemes).
        let reals = recon_scheme.reals();
        let mut u_bufs = [Buffer::default(); 4];
        for (l, link) in LinkType::ALL.iter().enumerate() {
            let buf = mem.alloc(
                (lattice.volume() * 4 * reals * 8) as u64,
                &format!("U[{l}]"),
            );
            for s in 0..lattice.volume() {
                for k in 0..4 {
                    let m = gauge.link(*link, s, k);
                    if recon_scheme == Recon::R18 {
                        for i in 0..3 {
                            for j in 0..3 {
                                let addr = buf.base() + layout.u_byte(s, k, i, j) as u64;
                                mem.write_f64(addr, m.e[i][j].re());
                                mem.write_f64(addr + 8, m.e[i][j].im());
                            }
                        }
                    } else {
                        // Reconstruction math is defined over the
                        // canonical double-precision representation.
                        let mut dm = Su3::<milc_complex::DoubleComplex>::zero();
                        for i in 0..3 {
                            for j in 0..3 {
                                dm.e[i][j] = milc_complex::DoubleComplex::new(
                                    m.e[i][j].re(),
                                    m.e[i][j].im(),
                                );
                            }
                        }
                        let enc = recon::encode(&dm, recon_scheme);
                        mem.write_f64_slice(&buf, ((s * 4 + k) * reals * 8) as u64, &enc);
                    }
                }
            }
            u_bufs[l] = buf;
        }

        // Neighbor tables, one per link type.
        let mut nbr_bufs = [Buffer::default(); 4];
        #[allow(clippy::needless_range_loop)] // l indexes table lookups and buffers in lockstep
        for l in 0..4 {
            let buf = mem.alloc(layout.nbr_bytes() as u64, &format!("nbr[{l}]"));
            for s in 0..lattice.volume() {
                for k in 0..4 {
                    mem.write_u32(
                        buf.base() + layout.nbr_byte(s, k) as u64,
                        nt.source_site(l, s, k) as u32,
                    );
                }
            }
            nbr_bufs[l] = buf;
        }

        // Source vector B over the full lattice.
        let b_buf = mem.alloc(layout.b_bytes() as u64, "B");
        for s in 0..lattice.volume() {
            for j in 0..3 {
                let addr = b_buf.base() + layout.b_byte(s, j) as u64;
                mem.write_f64(addr, b.site(s).c[j].re());
                mem.write_f64(addr + 8, b.site(s).c[j].im());
            }
        }

        // Output C over one parity.
        let c_buf = mem.alloc(layout.c_bytes() as u64, "C");

        // Target-site gather table.
        let target_buf = mem.alloc((lattice.half_volume() * 4) as u64, "target");
        for cb in 0..lattice.half_volume() {
            mem.write_u32(
                target_buf.base() + (cb * 4) as u64,
                lattice.site_of_checkerboard(cb, parity) as u32,
            );
        }

        // Spill scratch (thread-local memory model).
        let max_items = lattice.half_volume() as u64 * 48;
        let spill_slots = max_items.clamp(1, SPILL_SLOT_CAP);
        let spill_buf = mem.alloc(spill_slots * MAX_SPILLS as u64 * 16, "spill");

        let tables = DevTables {
            u: [
                u_bufs[0].base(),
                u_bufs[1].base(),
                u_bufs[2].base(),
                u_bufs[3].base(),
            ],
            nbr: [
                nbr_bufs[0].base(),
                nbr_bufs[1].base(),
                nbr_bufs[2].base(),
                nbr_bufs[3].base(),
            ],
            b: b_buf.base(),
            c: c_buf.base(),
            target: target_buf.base(),
            spill: spill_buf.base(),
            spill_slots,
            half_volume: lattice.half_volume() as u64,
            recon: recon_scheme,
        };

        Self {
            lattice,
            gauge,
            b,
            parity,
            recon: recon_scheme,
            mem,
            tables,
            c_buf,
            reference: None,
        }
    }

    /// The gauge storage scheme this problem was packed with.
    pub fn recon(&self) -> Recon {
        self.recon
    }

    /// The output tolerance appropriate to the gauge storage scheme
    /// (compressed layouts reconstruct with scheme-dependent accuracy).
    pub fn validation_tolerance(&self) -> f64 {
        self.recon.tolerance().max(1e-10)
    }

    /// The lattice.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// The gauge field.
    pub fn gauge(&self) -> &GaugeField<C> {
        &self.gauge
    }

    /// The source field.
    pub fn source(&self) -> &QuarkField<C> {
        &self.b
    }

    /// The target parity.
    pub fn parity(&self) -> Parity {
        self.parity
    }

    /// Replace the source field `B`: repack it into device memory and
    /// invalidate the cached CPU reference.  This is what lets one
    /// packed problem (gauge links, neighbor tables, spill scratch stay
    /// put) serve every iteration of a solver, where only the operand
    /// changes.
    ///
    /// # Panics
    /// Panics if `b` lives on a different lattice than the problem.
    pub fn set_source(&mut self, b: &QuarkField<C>) {
        assert_eq!(
            b.lattice(),
            &self.lattice,
            "replacement source lives on a different lattice"
        );
        let layout = DeviceLayout::new(&self.lattice);
        for s in 0..self.lattice.volume() {
            for j in 0..3 {
                let addr = self.tables.b + layout.b_byte(s, j) as u64;
                self.mem.write_f64(addr, b.site(s).c[j].re());
                self.mem.write_f64(addr + 8, b.site(s).c[j].im());
            }
        }
        self.b = b.clone();
        self.reference = None;
    }

    /// Device memory (pass to the launcher).
    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Device buffer addresses.
    pub fn tables(&self) -> DevTables {
        self.tables
    }

    /// Zero the output buffer (between kernel runs).
    pub fn zero_output(&self) {
        self.mem.zero(&self.c_buf);
    }

    /// Read the output vector back from the device.
    pub fn read_output(&self) -> Vec<ColorVector<C>> {
        let layout = DeviceLayout::new(&self.lattice);
        (0..self.lattice.half_volume())
            .map(|cb| {
                let mut v = ColorVector::<C>::zero();
                for i in 0..3 {
                    let addr = self.c_buf.base() + layout.c_byte(cb, i) as u64;
                    v.c[i] = C::new(self.mem.read_f64(addr), self.mem.read_f64(addr + 8));
                }
                v
            })
            .collect()
    }

    /// The CPU reference output (computed on first use, cached).
    pub fn reference(&mut self) -> &[ColorVector<C>] {
        if self.reference.is_none() {
            self.reference = Some(reference::dslash(&self.gauge, &self.b, self.parity));
        }
        self.reference.as_deref().expect("just computed")
    }

    /// The launch geometry of a configuration at a local size.
    pub fn launch_range(&self, cfg: KernelConfig, local_size: u32) -> NdRange {
        NdRange::linear(
            cfg.global_size(self.lattice.half_volume() as u64),
            local_size,
        )
    }

    /// Build the kernel object for a configuration; `num_groups` must be
    /// `launch_range(cfg, local_size).num_groups()`.
    pub fn make_kernel(&self, cfg: KernelConfig, num_groups: u64) -> Box<dyn Kernel> {
        build_kernel::<C>(cfg, self.tables, num_groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milc_complex::DoubleComplex as Z;
    use milc_lattice::neighbors::Hop;

    #[test]
    fn packing_roundtrips_gauge_elements() {
        let p = DslashProblem::<Z>::random(4, 77);
        let layout = DeviceLayout::new(p.lattice());
        for (l, link) in LinkType::ALL.iter().enumerate() {
            for s in [0usize, 17, 255] {
                for k in 0..4 {
                    let m = p.gauge().link(*link, s, k);
                    for i in 0..3 {
                        for j in 0..3 {
                            let addr = p.tables().u[l] + layout.u_byte(s, k, i, j) as u64;
                            assert_eq!(p.memory().read_f64(addr), m.e[i][j].re);
                            assert_eq!(p.memory().read_f64(addr + 8), m.e[i][j].im);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn packing_roundtrips_neighbors_and_targets() {
        let p = DslashProblem::<Z>::random(4, 78);
        let lat = p.lattice().clone();
        let nt = NeighborTable::build(&lat);
        for s in (0..lat.volume()).step_by(7) {
            for k in 0..4 {
                let addr = p.tables().nbr[2] + ((s * 4 + k) * 4) as u64;
                assert_eq!(
                    p.memory().read_u32(addr) as usize,
                    nt.neighbor(Hop::Bwd1, s, k)
                );
            }
        }
        for cb in (0..lat.half_volume()).step_by(11) {
            let addr = p.tables().target + (cb * 4) as u64;
            assert_eq!(
                p.memory().read_u32(addr) as usize,
                lat.site_of_checkerboard(cb, Parity::Even)
            );
        }
    }

    #[test]
    fn output_starts_zero_and_zeroes_again() {
        let p = DslashProblem::<Z>::random(2, 79);
        let out = p.read_output();
        assert!(out.iter().all(|v| v.norm_sqr() == 0.0));
        // Dirty one element, re-zero, verify.
        p.memory().write_f64(p.c_buf.base(), 5.0);
        p.zero_output();
        assert!(p.read_output().iter().all(|v| v.norm_sqr() == 0.0));
    }

    #[test]
    fn reference_is_cached_and_consistent() {
        let mut p = DslashProblem::<Z>::random(2, 80);
        let a = p.reference().to_vec();
        let b = p.reference().to_vec();
        assert_eq!(a, b);
        assert!(a.iter().any(|v| v.norm_sqr() > 0.0));
    }

    #[test]
    fn set_source_repacks_and_invalidates_reference() {
        let mut p = DslashProblem::<Z>::random(4, 81);
        let before = p.reference().to_vec();
        let b2 = QuarkField::<Z>::random(p.lattice(), 999);
        p.set_source(&b2);
        // Device memory now holds the new source.
        let layout = DeviceLayout::new(p.lattice());
        for s in (0..p.lattice().volume()).step_by(13) {
            for j in 0..3 {
                let addr = p.tables().b + layout.b_byte(s, j) as u64;
                assert_eq!(p.memory().read_f64(addr), b2.site(s).c[j].re);
            }
        }
        // The reference is recomputed for the new source.
        let after = p.reference().to_vec();
        assert_ne!(before, after);
    }

    #[test]
    #[should_panic(expected = "different lattice")]
    fn set_source_rejects_wrong_lattice() {
        let mut p = DslashProblem::<Z>::random(4, 82);
        let small = QuarkField::<Z>::random(&Lattice::hypercubic(2), 1);
        p.set_source(&small);
    }

    #[test]
    #[should_panic(expected = "different lattices")]
    fn mismatched_fields_rejected() {
        let lat2 = Lattice::hypercubic(2);
        let lat4 = Lattice::hypercubic(4);
        let g = GaugeField::<Z>::random(&lat2, 1);
        let b = QuarkField::<Z>::random(&lat4, 2);
        let _ = DslashProblem::from_fields(g, b, Parity::Even);
    }
}
