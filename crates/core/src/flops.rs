//! FLOP accounting.
//!
//! The paper evaluates performance as "theoretical FLOPs / measured
//! time" with 600.8 MFLOP for the L = 32 kernel (Section IV-B); this
//! module reproduces that count for any lattice size so GFLOP/s figures
//! are comparable across configurations and to the paper.

use milc_lattice::Lattice;

/// Real FLOPs per (link type, direction) term of one target site: one
/// 3x3 complex mat-vec (9 x 6 + 6 x 2) plus the 3-component complex
/// accumulation into C (3 x 2).
pub const FLOPS_PER_MATVEC_TERM: u64 = 9 * 6 + 6 * 2 + 3 * 2;

/// Real FLOPs per target site: |l| x |k| = 16 terms.
pub const FLOPS_PER_SITE: u64 = 16 * FLOPS_PER_MATVEC_TERM;

/// Theoretical FLOPs of one Dslash application on one parity of the
/// lattice.
pub fn theoretical_flops(lattice: &Lattice) -> u64 {
    lattice.half_volume() as u64 * FLOPS_PER_SITE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_papers_600_8_mflop_at_l32() {
        let lat = Lattice::hypercubic(32);
        let flops = theoretical_flops(&lat);
        // 524288 sites x 1152 FLOP = 603,979,776 ~ "600.8 million".
        assert_eq!(flops, 603_979_776);
        assert!((flops as f64 - 600.8e6).abs() / 600.8e6 < 0.01);
    }

    #[test]
    fn scales_with_volume() {
        let l16 = theoretical_flops(&Lattice::hypercubic(16));
        let l32 = theoretical_flops(&Lattice::hypercubic(32));
        assert_eq!(l32, 16 * l16);
    }

    #[test]
    fn per_site_breakdown() {
        assert_eq!(FLOPS_PER_MATVEC_TERM, 72);
        assert_eq!(FLOPS_PER_SITE, 1152);
    }
}
