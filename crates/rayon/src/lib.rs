//! Offline drop-in subset of [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this repository has no crates.io access, so
//! the workspace vendors the *exact* rayon surface it uses — range
//! `into_par_iter().map().collect()`, `par_iter_mut().enumerate()
//! .for_each()` and `par_chunks_mut(n).enumerate().for_each()` — on top
//! of `std::thread::scope`.  Semantics match rayon for this subset:
//! contiguous chunking, order-preserving `collect`, and the same
//! `Fn + Sync` closure bounds (so code written against this shim still
//! compiles against real rayon).
//!
//! Not a general work-stealing pool: each parallel call spawns up to
//! `available_parallelism()` scoped threads.  The workloads here
//! (per-site lattice loops, per-SM simulation slices) are coarse and
//! uniform, which is the one shape where eager contiguous chunking and
//! work stealing behave the same.

use std::ops::Range;

/// Threads to use for one parallel call: the host parallelism, capped by
/// the number of work units.
fn threads_for(units: usize) -> usize {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    host.min(units).max(1)
}

/// Everything user code needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

// ---- range -> map -> collect ---------------------------------------------

/// Conversion into a parallel iterator (ranges of `usize`/`u64`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// The parallel iterator.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over a contiguous index range.
pub struct RangePar<T> {
    range: Range<T>,
}

/// A mapped parallel range, ready to `collect`.
pub struct MapPar<T, F> {
    range: Range<T>,
    f: F,
}

macro_rules! impl_range_par {
    ($t:ty) => {
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                RangePar { range: self }
            }
        }

        impl RangePar<$t> {
            /// Map each index through `f` (applied in parallel at collect
            /// time).
            pub fn map<F, R>(self, f: F) -> MapPar<$t, F>
            where
                F: Fn($t) -> R + Sync,
                R: Send,
            {
                MapPar {
                    range: self.range,
                    f,
                }
            }
        }

        impl<F, R> MapPar<$t, F>
        where
            F: Fn($t) -> R + Sync,
            R: Send,
        {
            /// Evaluate in parallel, preserving index order.
            pub fn collect<C: FromIterator<R>>(self) -> C {
                let n = (self.range.end.saturating_sub(self.range.start)) as usize;
                let nt = threads_for(n);
                let f = &self.f;
                if nt <= 1 {
                    return self.range.map(f).collect();
                }
                let chunk = n.div_ceil(nt);
                let mut parts: Vec<Vec<R>> = Vec::with_capacity(nt);
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..nt)
                        .map(|t| {
                            let lo = self.range.start + (t * chunk) as $t;
                            let hi = (lo + chunk as $t).min(self.range.end);
                            s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
                        })
                        .collect();
                    for h in handles {
                        parts.push(h.join().expect("rayon-shim worker panicked"));
                    }
                });
                parts.into_iter().flatten().collect()
            }
        }
    };
}

impl_range_par!(usize);
impl_range_par!(u64);

// ---- mutable slice iteration ---------------------------------------------

/// `par_iter_mut` / `par_chunks_mut` on slices (and `Vec` via deref).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T` elements.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel iterator over `&mut [T]` chunks of length `n` (last may
    /// be shorter).
    fn par_chunks_mut(&mut self, n: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, n: usize) -> ParChunksMut<'_, T> {
        assert!(n > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, n }
    }
}

/// Parallel `&mut` element iterator.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

/// Enumerated parallel `&mut` element iterator.
pub struct EnumIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> EnumIterMut<'a, T> {
        EnumIterMut { slice: self.slice }
    }

    /// Apply `f` to every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut T) + Sync,
    {
        self.enumerate().for_each(|(_, item)| f(item));
    }
}

impl<'a, T: Send> EnumIterMut<'a, T> {
    /// Apply `f` to every `(index, element)` in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut T)) + Sync,
    {
        let n = self.slice.len();
        let nt = threads_for(n);
        let chunk = n.div_ceil(nt.max(1)).max(1);
        let f = &f;
        std::thread::scope(|s| {
            let mut rest: &'a mut [T] = self.slice;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                s.spawn(move || {
                    for (i, item) in head.iter_mut().enumerate() {
                        f((base + i, item));
                    }
                });
                base += take;
                rest = tail;
            }
        });
    }
}

/// Parallel chunk iterator.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    n: usize,
}

/// Enumerated parallel chunk iterator.
pub struct EnumChunksMut<'a, T> {
    chunks: Vec<(usize, &'a mut [T])>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its chunk index.
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut {
            chunks: self.slice.chunks_mut(self.n).enumerate().collect(),
        }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

impl<'a, T: Send> EnumChunksMut<'a, T> {
    /// Apply `f` to every `(chunk_index, chunk)` in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let n = self.chunks.len();
        let nt = threads_for(n);
        let per = n.div_ceil(nt.max(1)).max(1);
        let f = &f;
        let mut work = self.chunks;
        std::thread::scope(|s| {
            while !work.is_empty() {
                let take = per.min(work.len());
                let batch: Vec<(usize, &'a mut [T])> = work.drain(..take).collect();
                s.spawn(move || {
                    for (i, c) in batch {
                        f((i, c));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_collects_empty() {
        let v: Vec<u64> = (0..0u64).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn par_iter_mut_enumerate_touches_every_element_once() {
        let mut v = vec![0usize; 777];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i + 1);
        }
    }

    #[test]
    fn par_chunks_mut_enumerate_covers_ragged_tail() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(c, chunk)| {
            for x in chunk.iter_mut() {
                *x = c;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i / 10);
        }
    }
}
