//! Offline drop-in subset of [rand 0.8](https://crates.io/crates/rand).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the rand surface it uses: the `RngCore` / `Rng` /
//! `SeedableRng` traits, `rngs::StdRng`, and uniform `gen_range`
//! sampling over `f64` and integer ranges.  The trait shapes match rand
//! 0.8 so code written against this shim compiles unchanged against the
//! real crate; the *stream* of `StdRng` is not bit-compatible with
//! upstream (upstream documents StdRng's algorithm as unspecified), only
//! deterministic per seed — which is all the field constructors and
//! tests rely on.

use std::ops::Range;

/// The core of a random number generator: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator seedable from a `u64` (rand 0.8's universal constructor).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanded by SplitMix64
    /// exactly like rand 0.8's `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open `a..b` over `f64` or
    /// integers, as the workspace uses it).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        // 53 uniform mantissa bits in [0, 1).
        let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u01 * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// SplitMix64 step — the seed expander rand 0.8 uses for
/// `seed_from_u64`, and a fine tiny generator in its own right.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.  Deterministic per seed; not bit-compatible with
    /// upstream `StdRng` (whose algorithm upstream documents as
    /// unspecified and subject to change).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from one seed, but keep the guard local.
            if s == [0; 4] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_range_stays_in_bounds_and_varies() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        // A uniform sample of 10k points covers most of the range.
        assert!(min < -1.5 && max > 2.5);
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
