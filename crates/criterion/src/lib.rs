//! Offline drop-in subset of [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the criterion surface its `harness = false` benches use:
//! `Criterion`, `benchmark_group` with `sample_size` / `throughput`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — per sample, run the closure in
//! a timed loop sized to ~`MIN_SAMPLE_MS` and report the min / mean /
//! max nanoseconds per iteration plus derived element throughput.  No
//! statistics engine, no HTML reports; the simulator itself is the
//! profiler in this repository, and these benches exist to time *host*
//! code paths.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Minimum measured wall time per sample, milliseconds.
const MIN_SAMPLE_MS: f64 = 20.0;

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name).bench_function("run", f);
    }
}

/// Units of work per iteration, for derived throughput.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

/// A group of benchmarks sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for derived throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F)
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&id.label, self.throughput);
    }

    /// Benchmark a closure over one input value.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F)
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&id.label, self.throughput);
    }

    /// End the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Runs and times one benchmark body.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Time `f`, called in a batch loop per sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warmup + batch sizing: grow the batch until one batch takes
        // at least MIN_SAMPLE_MS (or a single call already does).
        let mut batch = 1u64;
        let per_iter_ns = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64;
            if ns >= MIN_SAMPLE_MS * 1e6 || batch >= 1 << 20 {
                break ns / batch as f64;
            }
            batch = batch.saturating_mul(2);
        };
        let _ = per_iter_ns;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("  {label:40} (no samples)");
            return;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self.samples_ns.iter().cloned().fold(f64::MAX, f64::min);
        let max = self.samples_ns.iter().cloned().fold(f64::MIN, f64::max);
        let rate = match throughput {
            Some(Throughput::Elements(e)) => {
                format!("  {:>12.1} Melem/s", e as f64 / mean * 1e3)
            }
            Some(Throughput::Bytes(b)) => {
                format!("  {:>12.1} MiB/s", b as f64 / mean * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("  {label:40} [{min:>12.1} ns  {mean:>12.1} ns  {max:>12.1} ns]{rate}");
    }
}

/// Bundle bench functions into one named runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| k * 2)
        });
        group.finish();
    }

    criterion_group!(smoke, quick);

    #[test]
    fn group_runs_and_reports() {
        // The generated runner must execute both bench bodies without
        // panicking (timing output goes to stdout).
        smoke();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
