//! # milc-dslash-repro
//!
//! Facade crate of the MILC-Dslash reproduction (Dufek et al.,
//! "Optimizing MILC-Dslash Performance on NVIDIA A100 GPU: Parallel
//! Strategies using SYCL", SC 2024): re-exports every workspace crate
//! and provides the `examples/` binaries and the workspace-level
//! integration tests (`tests/paper_claims.rs` and friends).
//!
//! See `README.md` for the tour, `DESIGN.md` for the substitution table
//! (what the paper used on real hardware vs. what this repository
//! builds), and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use gpu_sim::QueueMode;
//! use milc_complex::DoubleComplex;
//! use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, Strategy};
//!
//! let mut problem = DslashProblem::<DoubleComplex>::random(4, 42);
//! let device = gpu_sim::DeviceSpec::test_small();
//! let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
//! let out = run_config(&mut problem, cfg, 96, &device, QueueMode::OutOfOrder).unwrap();
//! assert!(out.error.within_reassociation_noise());
//! ```

pub use gpu_sim;
pub use milc_complex;
pub use milc_dslash;
pub use milc_lattice;
pub use quda_ref;
pub use syclomatic_sim;
