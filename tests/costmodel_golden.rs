//! Golden regression test for the static cost model: the analytic
//! per-candidate estimates — occupancy, limiter, waves, predicted
//! duration and rank — for every legal local size of all twelve
//! Table I configurations must match the checked-in snapshot
//! `tests/snapshots/costmodel_golden.csv` exactly.
//!
//! Where `tune_golden.csv` pins what the *measuring* tuner selects,
//! this snapshot pins what the *static* ranking predicts, over the
//! whole candidate set: a change to the occupancy limiter model, the
//! traffic estimator, or the calibrated timing weights that moves any
//! prediction (or reorders any candidate) fails here instead of
//! silently shifting which candidates a ranked sweep prunes.
//!
//! **Updating the snapshot** (after an *intentional* model change):
//!
//! ```text
//! COSTMODEL_GOLDEN_UPDATE=1 cargo test --test costmodel_golden
//! ```
//!
//! then review the diff like any other code change — every moved
//! duration is a claim about predicted performance — and re-run the
//! differential suite (`cargo test --test costmodel_diff`) to confirm
//! the predictions still track measurement.

use milc_bench::{paper, Experiment};
use milc_complex::DoubleComplex;
use milc_dslash::{rank_candidates, DslashProblem, KernelConfig};
use std::path::PathBuf;

/// Same lattice, seed and (volume-matched) device as `tune_golden`, so
/// the static predictions here and the measured selections there can be
/// compared eyeball-to-eyeball.
const L: usize = 4;
const SEED: u64 = 2024;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
        .join("costmodel_golden.csv")
}

/// One CSV line per `(config, legal local size)`, in predicted-rank
/// order within each config.  Durations to 3 decimals, occupancy to 4 —
/// coarse enough to be stable across platforms, fine enough that any
/// real model change moves them.
fn predicted_rows() -> Vec<String> {
    let exp = Experiment::new(L, SEED);
    let problem = DslashProblem::<DoubleComplex>::random(L, exp.seed);
    let mut rows = Vec::new();
    for col in paper::TABLE1 {
        let cfg = KernelConfig::new(col.strategy, col.order);
        for (i, r) in rank_candidates(&problem, cfg, &exp.device)
            .iter()
            .enumerate()
        {
            match &r.estimate {
                Ok(e) => rows.push(format!(
                    "{},{},{},{:.4},{:?},{:.3},{:.3}",
                    cfg.label(),
                    r.local_size,
                    i + 1,
                    e.occupancy.achieved,
                    e.occupancy.limiter,
                    e.occupancy.waves,
                    e.duration_us
                )),
                Err(why) => rows.push(format!(
                    "{},{},-,-,-,-,inestimable: {why}",
                    cfg.label(),
                    r.local_size
                )),
            }
        }
    }
    rows
}

#[test]
fn static_predictions_match_the_golden_snapshot() {
    let rows = predicted_rows();
    let rendered = format!(
        "kernel,local_size,rank,occupancy,limiter,waves,duration_us\n{}\n",
        rows.join("\n")
    );
    let path = snapshot_path();

    if std::env::var_os("COSTMODEL_GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("costmodel_golden: snapshot updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             COSTMODEL_GOLDEN_UPDATE=1 cargo test --test costmodel_golden",
            path.display()
        )
    });
    let golden_rows: Vec<&str> = golden.lines().skip(1).filter(|l| !l.is_empty()).collect();
    assert_eq!(
        golden_rows.len(),
        rows.len(),
        "snapshot has {} rows, the model produced {} — regenerate with \
         COSTMODEL_GOLDEN_UPDATE=1 if the candidate sets changed",
        golden_rows.len(),
        rows.len()
    );
    let mut drifted = Vec::new();
    for (got, want) in rows.iter().zip(&golden_rows) {
        if got != want {
            drifted.push(format!("  got  `{got}`\n  want `{want}`"));
        }
    }
    assert!(
        drifted.is_empty(),
        "static predictions drifted from the golden snapshot \
         ({}); if the model change is intentional, regenerate with \
         COSTMODEL_GOLDEN_UPDATE=1 cargo test --test costmodel_golden and review the diff:\n{}",
        path.display(),
        drifted.join("\n")
    );
}

#[test]
fn golden_predictions_are_deterministic() {
    assert_eq!(predicted_rows(), predicted_rows());
}
