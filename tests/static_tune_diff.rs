//! Differential proof of **measurement-free tuning**: the static
//! cost-model ranking, calibrated per regime by the shared
//! [`RegimeCalibration`] table, is good enough to *replace* the
//! measuring sweep — not just to prune it.
//!
//! Four claims, each proved against the measuring simulator at L = 8
//! (volume-matched device, the `tune_golden` conventions):
//!
//! 1. **Static sweeps choose well.**  For every Table I configuration,
//!    a [`SweepMode::Static`] layout sweep spends *zero* launches
//!    (`sweep_launches == 0`, no timed candidates) and its winner's
//!    *measured* warm duration is within [`MAX_REGRET`] of the
//!    exhaustive sweep's winner.
//! 2. **Cold predictions land.**  The cold-regime calibrated estimate
//!    (compulsory-miss L2 path × the committed cold scale) is within
//!    [`MAX_COLD_DRIFT_PCT`] of a genuinely cold measured launch
//!    (`run_config`: fresh device state) at the paper's local size.
//! 3. **Sharded ranks tune launch-free.**  For N ∈ {2, 4, 8} slabs,
//!    `tune_rank_local_sizes_report` decides every rank statically
//!    (zero launches) and the chosen size's measured cold phase-sum is
//!    within [`MAX_REGRET`] of the best candidate's.
//! 4. **Solver streams compose.**  `estimate_solve_stream` (one cold +
//!    n−1 warm launches per parity kernel) predicts the launch count of
//!    a traced `solve_tuned` run *exactly* and its total device time
//!    within [`MAX_STREAM_DRIFT_PCT`], measured from the
//!    `launch_duration_us` histogram the solve emits.
//!
//! Failures accumulate into one report (the `costmodel_diff` idiom) so
//! a drifted model shows every miss at once, not just the first.

use gpu_sim::{Launcher, QueueMode, Regime, RegimeCalibration};
use milc_bench::{paper, Experiment};
use milc_complex::DoubleComplex as Z;
use milc_dslash::obs;
use milc_dslash::shard::{tune_rank_local_sizes_report, Phase, ShardedProblem};
use milc_dslash::tune::{sweep_layouts_with_mode, SweepMode, TuneCache, Tuner};
use milc_dslash::{
    estimate_config, estimate_solve_stream, recommended_config, run_config, solve_tuned,
    DslashProblem, KernelConfig, Metrics, SharedLayout,
};
use milc_lattice::{ColorVector, GaugeField, Lattice};

/// Same lattice and seed as `costmodel_diff` / `tune_golden`.
const L: usize = 8;
const SEED: u64 = 2024;

/// Headline regret bound from the issue: the static winner's measured
/// duration may exceed the exhaustive winner's by at most 5%.
const MAX_REGRET: f64 = 0.05;

/// Cold-regime drift gate, percent: the calibrated cold prediction must
/// land within ±25% of a cold measurement (same bound `perfdiff
/// --static-tune` enforces in CI).
const MAX_COLD_DRIFT_PCT: f64 = 25.0;

/// Solver-stream drift gate, percent.  The stream composes per-kernel
/// cold/warm estimates across hundreds of launches, so per-launch
/// errors average out; the bound matches the cold gate.
const MAX_STREAM_DRIFT_PCT: f64 = 25.0;

/// Of the twelve Table I configurations, at least this many must be
/// estimable at the paper's local size (an inestimable configuration is
/// tolerated — it falls back to measuring in production — but a rash of
/// them is a model regression).
const MIN_ESTIMABLE: usize = 10;

fn pct(predicted: f64, measured: f64) -> f64 {
    (predicted - measured) / measured * 100.0
}

/// Claim 1: for every Table I configuration the static layout sweep
/// spends zero launches and its winner measures within `MAX_REGRET` of
/// the exhaustive winner.
#[test]
fn static_sweep_winner_has_bounded_regret_on_all_table1_configs() {
    let exp = Experiment::new(L, SEED);
    let mut problem = DslashProblem::<Z>::random(L, SEED);
    let mut failures: Vec<String> = Vec::new();

    for col in paper::TABLE1 {
        let cfg = KernelConfig::new(col.strategy, col.order);
        let label = cfg.label();

        let stat = sweep_layouts_with_mode(
            &mut problem,
            cfg,
            &exp.device,
            QueueMode::OutOfOrder,
            SweepMode::Static,
        )
        .unwrap_or_else(|e| panic!("{label}: static sweep failed: {e}"));
        assert_eq!(
            stat.sweep_launches, 0,
            "{label}: a static sweep must not launch"
        );
        assert_eq!(
            stat.timed().count(),
            0,
            "{label}: a static sweep must not time any candidate"
        );
        assert_eq!(
            stat.predicted().count(),
            1,
            "{label}: exactly the winner is predicted"
        );

        let full = sweep_layouts_with_mode(
            &mut problem,
            cfg,
            &exp.device,
            QueueMode::OutOfOrder,
            SweepMode::Exhaustive,
        )
        .unwrap_or_else(|e| panic!("{label}: exhaustive sweep failed: {e}"));

        // The static winner's *measured* duration comes from the
        // exhaustive sweep's record of the same (size, layout) point.
        let Some(measured) = full
            .timed()
            .find(|p| p.local_size == stat.winner.local_size && p.layout == stat.winner.layout)
        else {
            failures.push(format!(
                "{label}: static winner {} @ {} was not timed by the exhaustive sweep",
                stat.winner.layout.tag(),
                stat.winner.local_size
            ));
            continue;
        };
        let regret = (measured.duration_us - full.winner.duration_us) / full.winner.duration_us;
        if regret > MAX_REGRET {
            failures.push(format!(
                "{label}: static winner {} @ {} measures {:.3} µs vs exhaustive \
                 winner {} @ {} at {:.3} µs — regret {:.1}% > {:.0}%",
                stat.winner.layout.tag(),
                stat.winner.local_size,
                measured.duration_us,
                full.winner.layout.tag(),
                full.winner.local_size,
                full.winner.duration_us,
                regret * 100.0,
                MAX_REGRET * 100.0,
            ));
        }
    }

    assert!(
        failures.is_empty(),
        "static sweep regret out of bounds:\n{}",
        failures.join("\n")
    );
}

/// Claim 2: the calibrated cold prediction lands within ±25% of a cold
/// measured launch at the paper's Table I local size.
#[test]
fn cold_calibrated_predictions_match_cold_measurements() {
    let exp = Experiment::new(L, SEED);
    let mut problem = DslashProblem::<Z>::random(L, SEED);
    let cal = RegimeCalibration::committed();
    let mut failures: Vec<String> = Vec::new();
    let mut estimable = 0usize;

    for col in paper::TABLE1 {
        let cfg = KernelConfig::new(col.strategy, col.order);
        let label = cfg.label();
        let ls = paper::table1_local_size(col.strategy);

        let est = match estimate_config(&problem, cfg, ls, &exp.device) {
            Ok(e) => e,
            // Tolerated: production falls back to measuring; the
            // MIN_ESTIMABLE floor below catches a rash of these.
            Err(_) => continue,
        };
        estimable += 1;
        let predicted = cal.calibrated_us(&est, Regime::Cold);
        assert!(
            est.cold_duration_us >= est.duration_us,
            "{label}: cold model duration below warm"
        );

        // `run_config` launches on a fresh device state: genuinely cold.
        let out = run_config(&mut problem, cfg, ls, &exp.device, QueueMode::OutOfOrder)
            .unwrap_or_else(|e| panic!("{label}: cold run failed: {e}"));
        let measured = out.report.duration_us;
        let drift = pct(predicted, measured);
        if drift.abs() > MAX_COLD_DRIFT_PCT {
            failures.push(format!(
                "{label} @ {ls}: cold predicted {predicted:.3} µs vs measured \
                 {measured:.3} µs — drift {drift:+.1}% beyond ±{MAX_COLD_DRIFT_PCT}%",
            ));
        }
    }

    assert!(
        estimable >= MIN_ESTIMABLE,
        "only {estimable} of {} Table I configurations were estimable",
        paper::TABLE1.len()
    );
    assert!(
        failures.is_empty(),
        "cold calibration drift out of bounds:\n{}",
        failures.join("\n")
    );
}

/// Claim 3: sharded per-rank tuning decides statically (zero launches)
/// and the chosen size's measured cold phase-sum is within `MAX_REGRET`
/// of the best candidate's, for N ∈ {2, 4, 8} slabs.
#[test]
fn sharded_static_tuning_spends_no_launches_and_bounds_regret() {
    let exp = Experiment::new(L, SEED);
    let cfg = recommended_config();
    let mut failures: Vec<String> = Vec::new();

    for n in [2usize, 4, 8] {
        let problem = ShardedProblem::<Z>::random(L, SEED, n);
        let group = gpu_sim::DeviceGroup::homogeneous(
            exp.device.clone(),
            n,
            gpu_sim::Interconnect::nvlink(),
        );
        let mut cache = TuneCache::new();
        let report = tune_rank_local_sizes_report(&problem, cfg, &group, &mut cache)
            .unwrap_or_else(|e| panic!("N={n}: shard tuning failed: {e}"));
        assert_eq!(
            report.sweep_launches, 0,
            "N={n}: static shard tuning must not launch"
        );
        assert_eq!(report.measured_ranks, 0, "N={n}: no measuring fallback");
        assert!(
            report.static_ranks >= 1,
            "N={n}: at least one static decision"
        );
        assert_eq!(report.sizes.len(), n);

        // Ground truth on rank 0 (slabs are homogeneous: N divides L):
        // measure every candidate's cold phase-sum — the exact quantity
        // the static score predicts — and compare the chosen size's.
        let rank = problem.rank(0);
        let device = group.device(0);
        let launcher = Launcher::new(device);
        let mut sizes = cfg.legal_local_sizes(rank.phase_targets(Phase::Full));
        for phase in [Phase::Interior, Phase::Boundary] {
            let t = rank.phase_targets(phase);
            if t > 0 {
                sizes.retain(|&ls| cfg.local_size_legal(ls, t));
            }
        }
        let mut measured: Vec<(u32, f64)> = Vec::new();
        for &ls in &sizes {
            let mut sum = 0.0;
            let mut ok = true;
            for phase in [Phase::Full, Phase::Interior, Phase::Boundary] {
                if rank.phase_targets(phase) == 0 {
                    continue;
                }
                let range = rank.launch_range(cfg, phase, ls);
                let kernel = rank
                    .make_kernel(cfg, phase, range.num_groups())
                    .expect("non-empty phase builds a kernel");
                match launcher.launch(kernel.as_ref(), range, rank.memory()) {
                    Ok(launch) => sum += launch.duration_us,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                measured.push((ls, sum));
            }
        }
        let (best_ls, best_us) = measured
            .iter()
            .copied()
            .fold(None::<(u32, f64)>, |best, s| match best {
                Some(b) if b.1 <= s.1 => Some(b),
                _ => Some(s),
            })
            .expect("at least one measurable candidate");
        let chosen = report.sizes[0];
        let Some(&(_, chosen_us)) = measured.iter().find(|&&(ls, _)| ls == chosen) else {
            failures.push(format!(
                "N={n}: chosen size {chosen} was not measurable on rank 0"
            ));
            continue;
        };
        let regret = (chosen_us - best_us) / best_us;
        if regret > MAX_REGRET {
            failures.push(format!(
                "N={n}: chosen size {chosen} measures {chosen_us:.3} µs cold \
                 phase-sum vs best {best_ls} at {best_us:.3} µs — regret \
                 {:.1}% > {:.0}%",
                regret * 100.0,
                MAX_REGRET * 100.0,
            ));
        }
    }

    assert!(
        failures.is_empty(),
        "sharded static tuning regret out of bounds:\n{}",
        failures.join("\n")
    );
}

/// Claim 4: the solver-stream estimate predicts a traced `solve_tuned`
/// run's launch count exactly and its total device time within
/// `MAX_STREAM_DRIFT_PCT`, at the CG scale (L = 4) where a full solve
/// stays cheap enough to trace end to end.
#[test]
fn solver_stream_estimate_matches_traced_solve() {
    const SOLVE_L: usize = 4;
    let exp = Experiment::new(SOLVE_L, SEED);
    let lattice = Lattice::hypercubic(SOLVE_L);
    let gauge = GaugeField::<Z>::random(&lattice, SEED);
    // A deterministic nonzero even-parity source.
    let b: Vec<ColorVector<Z>> = (0..lattice.half_volume())
        .map(|cb| {
            let t = cb as f64 * 0.37 + 0.11;
            ColorVector::new(
                Z::new(t.sin(), t.cos()),
                Z::new((2.0 * t).sin(), (2.0 * t).cos()),
                Z::new((3.0 * t).sin(), (3.0 * t).cos()),
            )
        })
        .collect();
    let cfg = recommended_config();
    let mut tuner = Tuner::in_memory();

    // Pre-tune so the solve itself is a cache hit: the metrics scope
    // below then sees only the CG launches, not the sweep's.
    let mut probe = DslashProblem::<Z>::random(SOLVE_L, SEED);
    let decision = tuner
        .tune(&mut probe, cfg, &exp.device, QueueMode::OutOfOrder)
        .expect("tuning the solver kernel");
    let tuned_cfg = match SharedLayout::from_tag(&decision.entry.layout) {
        Some(layout) => cfg.with_layout(layout),
        None => cfg,
    };
    let tuned_ls = decision.entry.local_size;
    let label = tuned_cfg.label();

    let metrics = Metrics::new();
    let sol = {
        let _scope = obs::set_metrics(&metrics);
        solve_tuned(&gauge, &b, 0.8, 1e-8, 200, &exp.device, &mut tuner).expect("tuned solve")
    };
    assert!(sol.solution.converged, "CG must converge");
    assert!(sol.tuned_from_cache, "pre-tuned solve must hit the cache");
    assert_eq!(sol.local_size, tuned_ls);

    let (count, sum_us) = metrics
        .histogram_sum("launch_duration_us", &[("config", &label)])
        .expect("the solve records launch durations under the tuned label");
    assert_eq!(
        count, sol.dslash_applications,
        "every device Dslash application is one recorded launch"
    );

    // Operator applications: two Dslash launches each (D_oe then D_eo).
    assert_eq!(sol.dslash_applications % 2, 0);
    let applies = sol.dslash_applications / 2;
    let stream = estimate_solve_stream(&gauge, tuned_cfg, tuned_ls, &exp.device, applies)
        .expect("solver kernels are estimable");
    assert_eq!(stream.launches, sol.dslash_applications);
    assert_eq!(stream.cold_launches, 2, "one cold launch per parity kernel");

    let drift = pct(stream.calibrated_us, sum_us);
    assert!(
        drift.abs() <= MAX_STREAM_DRIFT_PCT,
        "solver stream estimate {:.1} µs vs traced {:.1} µs over {} launches — \
         drift {drift:+.1}% beyond ±{MAX_STREAM_DRIFT_PCT}%",
        stream.calibrated_us,
        sum_us,
        stream.launches,
    );
}
