//! The differential harness for shared-memory layouts: for every
//! Table I configuration that stages data in local memory, the kernel
//! must produce output *bitwise identical* under every tunable
//! [`SharedLayout`] — `Flat`, `Padded` and `Swizzled` remap where an
//! element lives in the scratchpad, never which element a work-item
//! reads.  Not "close": the layouts permute addresses, not values, so
//! any divergence at all is an aliasing bug in the offset map.
//!
//! On top of identity, the layouts must *matter*: the padded and
//! swizzled maps strictly reduce the modelled excessive shared-memory
//! wavefronts against `Flat` on 3LP-1 and 3LP-2, reach exactly zero
//! excess on 3LP-1, and the static bank-conflict proof reproduces every
//! one of those counts symbolically — no dynamic fallback.
//!
//! The default tests run at L = 4; the `#[ignore]` sweep repeats the
//! full cross product at the paper's L = 16:
//! `cargo test --release --test layout_diff -- --ignored`.

use gpu_sim::{DeviceSpec, QueueMode, StaticCheckConfig};
use milc_bench::paper;
use milc_complex::DoubleComplex as Z;
use milc_dslash::validate::bitwise_equal;
use milc_dslash::{
    run_config, run_config_staticcheck, DslashProblem, IndexOrder, KernelConfig, SharedLayout,
    Strategy,
};
use milc_lattice::{ColorVector, GaugeField, Lattice, Parity, QuarkField};

const SEED: u64 = 2024;

fn fields(l: usize) -> (GaugeField<Z>, QuarkField<Z>) {
    let lat = Lattice::hypercubic(l);
    (
        GaugeField::random(&lat, SEED),
        QuarkField::random(&lat, SEED + 17),
    )
}

/// One run of `cfg` on explicit fields: the output vector and the
/// launch's (actual, ideal) shared-memory wavefront counters.
fn run_layout(
    gauge: &GaugeField<Z>,
    b: &QuarkField<Z>,
    cfg: KernelConfig,
    ls: u32,
    device: &DeviceSpec,
) -> (Vec<ColorVector<Z>>, u64, u64) {
    let mut p = DslashProblem::from_fields(gauge.clone(), b.clone(), Parity::Even);
    let out = run_config(&mut p, cfg, ls, device, QueueMode::InOrder)
        .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
    assert!(
        out.error.within_reassociation_noise(),
        "{} diverged from the CPU reference: {:?}",
        cfg.label(),
        out.error
    );
    let c = &out.report.counters;
    (
        p.read_output(),
        c.shared_wavefronts,
        c.shared_wavefronts_ideal,
    )
}

/// Sweep every local-memory Table I configuration through the tunable
/// layout family, asserting bitwise identity against the `Flat` run and
/// returning per-config wavefront counts keyed by layout tag.
fn sweep(l: usize, device: &DeviceSpec) {
    let (gauge, b) = fields(l);
    let mut covered = 0;
    for col in paper::TABLE1.iter() {
        if !col.strategy.uses_local_mem() {
            continue;
        }
        covered += 1;
        let base = KernelConfig::new(col.strategy, col.order);
        let ls = paper::table1_local_size(col.strategy);
        let (expected, flat_waves, flat_ideal) = run_layout(&gauge, &b, base, ls, device);
        assert!(
            flat_waves >= flat_ideal,
            "{}: counter inversion",
            base.label()
        );
        for &layout in &base.tunable_layouts() {
            if layout == SharedLayout::Flat {
                continue;
            }
            let cfg = base.with_layout(layout);
            let (got, waves, ideal) = run_layout(&gauge, &b, cfg, ls, device);
            assert!(
                bitwise_equal(&got, &expected),
                "{}: output is not bitwise identical to the flat layout",
                cfg.label()
            );
            assert_eq!(
                ideal,
                flat_ideal,
                "{}: a layout must not change the ideal wavefront count",
                cfg.label()
            );
            assert!(
                waves - ideal <= flat_waves - flat_ideal,
                "{}: remedy layout made the conflicts worse ({} > {})",
                cfg.label(),
                waves - ideal,
                flat_waves - flat_ideal
            );
        }
    }
    assert_eq!(covered, 8, "Table I has eight local-memory configurations");
}

#[test]
fn all_local_mem_configs_bitwise_identical_across_layouts_l4() {
    sweep(4, &DeviceSpec::a100());
}

#[test]
#[ignore = "full-scale sweep; run with --ignored (release recommended)"]
fn all_local_mem_configs_bitwise_identical_across_layouts_l16() {
    sweep(16, &DeviceSpec::a100());
}

/// The remedy layouts are not merely harmless: on the conflict-heavy
/// 3LP-1 and 3LP-2 kernels both `Padded` and `Swizzled` strictly reduce
/// the excessive wavefronts the flat layout pays, and on 3LP-1 they
/// eliminate the excess entirely.
#[test]
fn remedy_layouts_strictly_reduce_excessive_wavefronts() {
    let device = DeviceSpec::a100();
    let (gauge, b) = fields(4);
    for (strategy, order) in [
        (Strategy::ThreeLp1, IndexOrder::KMajor),
        (Strategy::ThreeLp2, IndexOrder::KMajor),
    ] {
        let base = KernelConfig::new(strategy, order);
        let ls = paper::table1_local_size(strategy);
        let (_, flat_waves, flat_ideal) = run_layout(&gauge, &b, base, ls, &device);
        let flat_excess = flat_waves - flat_ideal;
        assert!(
            flat_excess > 0,
            "{}: the flat layout must actually conflict for the remedy to matter",
            base.label()
        );
        for layout in [
            SharedLayout::Padded { stride_elems: 5 },
            SharedLayout::Swizzled { xor_bits: 2 },
        ] {
            let cfg = base.with_layout(layout);
            let (_, waves, ideal) = run_layout(&gauge, &b, cfg, ls, &device);
            let excess = waves - ideal;
            assert!(
                excess < flat_excess,
                "{}: {} excessive wavefronts vs {} flat — no strict reduction",
                cfg.label(),
                excess,
                flat_excess
            );
            if strategy == Strategy::ThreeLp1 {
                assert_eq!(
                    excess,
                    0,
                    "{}: 3LP-1 must be conflict-free under a remedy layout",
                    cfg.label()
                );
            }
        }
    }
}

/// The static analyzer proves the exact wavefront counts the dynamic
/// bank model charges, for every layout of the conflict-heavy configs —
/// the zero-excess verdict on 3LP-1 is a symbolic theorem, not a
/// measurement.
#[test]
fn static_proof_matches_dynamic_wavefronts_for_every_layout() {
    let device = DeviceSpec::a100();
    let (gauge, b) = fields(4);
    for (strategy, order) in [
        (Strategy::ThreeLp1, IndexOrder::KMajor),
        (Strategy::ThreeLp2, IndexOrder::KMajor),
    ] {
        let base = KernelConfig::new(strategy, order);
        let ls = paper::table1_local_size(strategy);
        for &layout in &base.tunable_layouts() {
            let cfg = base.with_layout(layout);
            let p = DslashProblem::from_fields(gauge.clone(), b.clone(), Parity::Even);
            let srep = run_config_staticcheck(&p, cfg, ls, &device, &StaticCheckConfig::full())
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
            let proof = srep.bank_proof.unwrap_or_else(|| {
                panic!(
                    "{}: no static bank proof (dynamic fallback?): {:?}",
                    cfg.label(),
                    srep.notes
                )
            });
            let (_, waves, ideal) = run_layout(&gauge, &b, cfg, ls, &device);
            assert_eq!(proof.shared_wavefronts, waves, "{}", cfg.label());
            assert_eq!(proof.shared_wavefronts_ideal, ideal, "{}", cfg.label());
            if strategy == Strategy::ThreeLp1 && layout != SharedLayout::Flat {
                assert!(
                    proof.is_conflict_free(),
                    "{}: the proof must certify conflict freedom",
                    cfg.label()
                );
            }
        }
    }
}
