//! Table I *shape* tests: the profile counters the paper uses to explain
//! the performance differences must show the same structure in the
//! simulator — zero vs non-zero rows, orderings, and ratios.

use gpu_sim::QueueMode;
use milc_complex::DoubleComplex;
use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, RunOutcome, Strategy};

const L: usize = 8;

fn run(p: &mut DslashProblem<DoubleComplex>, s: Strategy, o: IndexOrder, ls: u32) -> RunOutcome {
    let ratio = (L as f64 / 32.0).powi(4);
    let device = gpu_sim::DeviceSpec::a100().scaled_for_volume_ratio(ratio);
    run_config(
        p,
        KernelConfig::new(s, o),
        ls,
        &device,
        QueueMode::OutOfOrder,
    )
    .unwrap()
}

#[test]
fn local_memory_rows_match_table1_structure() {
    // Rows 9/11: only 3LP-1, 3LP-2 and 4LP use shared memory; 1LP, 2LP
    // and 3LP-3 report zero.
    let mut p = DslashProblem::<DoubleComplex>::random(L, 3);
    for (s, expect_shared) in [
        (Strategy::OneLp, false),
        (Strategy::TwoLp, false),
        (Strategy::ThreeLp1, true),
        (Strategy::ThreeLp2, true),
        (Strategy::ThreeLp3, false),
        (Strategy::FourLp1, true),
        (Strategy::FourLp2, true),
    ] {
        let order = s.orders()[0];
        let ls = if s == Strategy::OneLp || s == Strategy::TwoLp {
            32
        } else {
            96
        };
        let out = run(&mut p, s, order, ls);
        let has_wavefronts = out.report.counters.shared_wavefronts > 0;
        assert_eq!(
            has_wavefronts,
            expect_shared,
            "{}: shared wavefronts {}",
            s.name(),
            out.report.counters.shared_wavefronts
        );
        let res_shared = out.report.resources.local_mem_bytes_per_group > 0;
        assert_eq!(res_shared, expect_shared, "{}: resources row", s.name());
    }
}

#[test]
fn divergent_branches_only_in_4lp() {
    // Row 13: thousands for 4LP, zero elsewhere (3LP's single-writer
    // `if (k == 0)` collapses are predicated, not divergent).
    let mut p = DslashProblem::<DoubleComplex>::random(L, 4);
    for s in [
        Strategy::OneLp,
        Strategy::TwoLp,
        Strategy::ThreeLp1,
        Strategy::ThreeLp3,
    ] {
        let ls = if matches!(s, Strategy::OneLp | Strategy::TwoLp) {
            32
        } else {
            96
        };
        let out = run(&mut p, s, s.orders()[0], ls);
        assert_eq!(
            out.report.counters.divergent_branches,
            0,
            "{} must not diverge",
            s.name()
        );
    }
    for s in [Strategy::FourLp1, Strategy::FourLp2] {
        let out = run(&mut p, s, s.orders()[0], 96);
        assert!(
            out.report.counters.divergent_branches > out.report.counters.warps,
            "{} must diverge on the l-branch every warp",
            s.name()
        );
    }
}

#[test]
fn atomics_only_in_3lp2_and_3lp3() {
    let mut p = DslashProblem::<DoubleComplex>::random(L, 5);
    for s in Strategy::ALL {
        let ls = if matches!(s, Strategy::OneLp | Strategy::TwoLp) {
            32
        } else {
            96
        };
        let out = run(&mut p, s, s.orders()[0], ls);
        let has = out.report.counters.atomic_instructions > 0;
        assert_eq!(has, s.uses_atomics(), "{}", s.name());
        if s == Strategy::ThreeLp2 {
            // 4 lanes (k-values) collide per C(i, s) component.
            let c = &out.report.counters;
            assert!(
                c.atomic_passes >= 3 * c.atomic_instructions,
                "3LP-2 must show multi-way atomic collisions"
            );
        }
    }
}

#[test]
fn tag_requests_track_coalescing_quality() {
    // Row 10's structure: 1LP (fully scattered per-site loads) issues
    // far more tag requests per byte than 3LP-1; i-major more than
    // k-major.
    let mut p = DslashProblem::<DoubleComplex>::random(L, 6);
    let one = run(&mut p, Strategy::OneLp, IndexOrder::KMajor, 32);
    let three_k = run(&mut p, Strategy::ThreeLp1, IndexOrder::KMajor, 96);
    let three_i = run(&mut p, Strategy::ThreeLp1, IndexOrder::IMajor, 96);
    assert!(
        one.report.counters.l1_tag_requests_global
            > 3 * three_k.report.counters.l1_tag_requests_global / 2,
        "1LP must need ~2x the tag requests of 3LP-1"
    );
    assert!(
        three_i.report.counters.l1_tag_requests_global
            > three_k.report.counters.l1_tag_requests_global,
        "i-major must need more tag requests than k-major (Table I row 10)"
    );
}

#[test]
fn four_lp_has_more_shared_traffic_and_bank_conflicts() {
    // Rows 11/12: 4LP's two reductions multiply its shared-memory
    // wavefronts and conflicts versus 3LP-1.
    let mut p = DslashProblem::<DoubleComplex>::random(L, 7);
    let t1 = run(&mut p, Strategy::ThreeLp1, IndexOrder::KMajor, 96);
    let f1 = run(&mut p, Strategy::FourLp1, IndexOrder::KMajor, 96);
    let f2i = run(&mut p, Strategy::FourLp2, IndexOrder::IMajor, 96);
    assert!(
        f1.report.counters.shared_wavefronts > 2 * t1.report.counters.shared_wavefronts,
        "4LP-1 shared wavefronts must dwarf 3LP-1's"
    );
    // 4LP-2 i-major shows the worst bank behaviour in Table I (row 12).
    assert!(
        f2i.report.counters.excessive_shared_wavefronts()
            >= f1.report.counters.excessive_shared_wavefronts(),
        "4LP-2 i-major must have at least 4LP-1 k-major's conflicts"
    );
}

#[test]
fn occupancy_structure_matches_table1() {
    // Row 4: 1LP is register-bound near 50% theoretical; the finer
    // strategies sit near 75%.
    let mut p = DslashProblem::<DoubleComplex>::random(L, 8);
    let one = run(&mut p, Strategy::OneLp, IndexOrder::KMajor, 256);
    let three = run(&mut p, Strategy::ThreeLp1, IndexOrder::KMajor, 768);
    assert!(
        (0.45..=0.52).contains(&one.report.occupancy.theoretical),
        "1LP theoretical occupancy {}",
        one.report.occupancy.theoretical
    );
    assert!(
        (0.70..=0.80).contains(&three.report.occupancy.theoretical),
        "3LP-1 theoretical occupancy {}",
        three.report.occupancy.theoretical
    );
    assert!(one.report.occupancy.achieved < three.report.occupancy.achieved);
}

#[test]
fn work_items_row_matches_strategy_multipliers() {
    // Row 2: 1x, 3x, 12x, 48x the half-volume.
    let mut p = DslashProblem::<DoubleComplex>::random(L, 9);
    let hv = p.lattice().half_volume() as u64;
    for (s, mult) in [
        (Strategy::OneLp, 1),
        (Strategy::TwoLp, 3),
        (Strategy::ThreeLp1, 12),
        (Strategy::FourLp1, 48),
    ] {
        let ls = if mult < 12 { 32 } else { 96 };
        let out = run(&mut p, s, s.orders()[0], ls);
        assert_eq!(out.report.range.global, hv * mult, "{}", s.name());
        assert_eq!(out.report.counters.items, hv * mult, "{}", s.name());
    }
}
