//! Golden regression test for the strong-scaling study: the sharded
//! Dslash's modelled wall clocks, halo traffic and tuned per-rank local
//! sizes at L = 8 for N = 1, 2, 4, 8 ranks — both exchange schedules —
//! must match the checked-in snapshot
//! `tests/snapshots/scaling_golden.csv` exactly.
//!
//! This pins the *distributed* performance model end to end: the
//! interconnect cost model (serialized vs pipelined), the
//! interior/boundary phase split, the per-rank tuner and the overall
//! wall-clock composition.  A change anywhere in that stack that moves
//! a number fails here instead of silently rewriting
//! `results/scaling.csv`.
//!
//! **Updating the snapshot** (after an *intentional* model change):
//!
//! ```text
//! SCALING_GOLDEN_UPDATE=1 cargo test --test scaling_golden
//! ```
//!
//! then review the diff like any other code change and regenerate the
//! committed artifact (`cargo run -p milc-bench --bin scaling
//! --release`).

use milc_bench::{strong_scaling, Experiment};
use milc_dslash::{IndexOrder, KernelConfig, Strategy, TuneCache};
use std::path::PathBuf;

const L: usize = 8;
const SEED: u64 = 2024;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
        .join("scaling_golden.csv")
}

/// Run the study; one CSV line per (rank count, schedule).  Wall and
/// comm times printed to 3 decimals — coarser than f64, fine enough
/// that any real model change moves them.
fn scaling_rows() -> Vec<String> {
    let exp = Experiment::new(L, SEED);
    let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
    let mut cache = TuneCache::new();
    strong_scaling(&exp, cfg, &[1, 2, 4, 8], &mut cache)
        .iter()
        .map(|p| {
            let sizes: Vec<String> = p
                .outcome
                .per_rank
                .iter()
                .map(|r| r.local_size.to_string())
                .collect();
            format!(
                "{},{},{:.3},{:.3},{},{}",
                p.row.ranks,
                p.row.mode,
                p.row.wall_us,
                p.row.comm_us,
                p.row.halo_bytes,
                sizes.join("|")
            )
        })
        .collect()
}

#[test]
fn scaling_study_matches_the_golden_snapshot() {
    let rows = scaling_rows();
    let rendered = format!(
        "ranks,mode,wall_us,comm_us,halo_bytes,local_sizes\n{}\n",
        rows.join("\n")
    );
    let path = snapshot_path();

    if std::env::var_os("SCALING_GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("scaling_golden: snapshot updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             SCALING_GOLDEN_UPDATE=1 cargo test --test scaling_golden",
            path.display()
        )
    });
    let golden_rows: Vec<&str> = golden.lines().skip(1).filter(|l| !l.is_empty()).collect();
    assert_eq!(
        golden_rows.len(),
        rows.len(),
        "snapshot has {} rows, the study produced {} — regenerate with \
         SCALING_GOLDEN_UPDATE=1 if the rank-count set changed",
        golden_rows.len(),
        rows.len()
    );
    let mut drifted = Vec::new();
    for (got, want) in rows.iter().zip(&golden_rows) {
        if got != want {
            drifted.push(format!("  got  `{got}`\n  want `{want}`"));
        }
    }
    assert!(
        drifted.is_empty(),
        "the strong-scaling study drifted from the golden snapshot \
         ({}); if the model change is intentional, regenerate with \
         SCALING_GOLDEN_UPDATE=1 cargo test --test scaling_golden and review the diff:\n{}",
        path.display(),
        drifted.join("\n")
    );
}

#[test]
fn golden_study_is_deterministic() {
    // Same fields, same tuner sweeps, same interconnect arithmetic —
    // the study must reproduce itself bit for bit.
    assert_eq!(scaling_rows(), scaling_rows());
}
