//! Differential proof of the static cost model (`staticcheck::costmodel`)
//! against the measuring simulator, over the paper's full Table I
//! configuration set.
//!
//! For each of the twelve configurations at L = 8 (volume-matched
//! device, the `tune_golden` conventions):
//!
//! 1. the **exhaustive warm sweep** measures every legal local size —
//!    the ground truth the tuner would act on;
//! 2. the **static ranking** (`rank_candidates`, no lanes executed)
//!    must place the measured winner inside its predicted top-3;
//! 3. the predicted durations must order like the measured ones:
//!    Spearman rank correlation ≥ 0.8 per configuration;
//! 4. a **ranked sweep** (`SweepMode::Ranked { time_top_k: 3 }`) must
//!    select the same winner as the exhaustive sweep while spending
//!    far fewer sweep launches — the pruning is free, not lossy.
//!
//! **Winner identity is duration equivalence, not local-size equality.**
//! Several configurations have a flat middle: mid-range local sizes
//! reach identical achieved occupancy and measure within parts-per-
//! million of each other (the residual spread is cache-replacement
//! order perturbed by warp interleaving — e.g. 2LP at L = 8 is an exact
//! 8-way tie).  Inside such a tie the argmin is noise no static model
//! can (or should) track, so "found the winner" means "found a
//! candidate whose measured duration matches the measured winner's to
//! within [`WINNER_REL_TOL`]".  For the same reason the Spearman
//! comparison first quantizes durations to [`QUANT_REL`] relative
//! buckets, collapsing noise-level near-ties into honest rank ties on
//! both sides.
//!
//! The model is tested against the simulator the way the simulator is
//! tested against the paper: ranked order, not absolute microseconds.

use gpu_sim::{spearman, QueueMode};
use milc_bench::{paper, Experiment};
use milc_complex::DoubleComplex;
use milc_dslash::tune::{sweep_config, sweep_config_with_mode, SweepMode};
use milc_dslash::{rank_candidates, DslashProblem, KernelConfig};

/// Same lattice and seed as the `tune_golden` snapshot: big enough that
/// every configuration has a non-trivial candidate set, small enough to
/// sweep all twelve exhaustively in a test.
const L: usize = 8;
const SEED: u64 = 2024;

/// The headline thresholds from the issue: measured winner inside the
/// predicted top-3, Spearman ≥ 0.8, per configuration.
const TOP_K: usize = 3;
const MIN_SPEARMAN: f64 = 0.8;

/// Two measured durations within this relative distance are the same
/// candidate as far as winner selection is concerned.  The flat-middle
/// noise floor is parts-per-million; the gap to a genuinely worse
/// candidate (an occupancy outlier) is tens of percent — 0.1% separates
/// the two regimes with three orders of magnitude to spare each side.
const WINNER_REL_TOL: f64 = 1e-3;

/// Relative bucket width for quantizing durations before the Spearman
/// comparison (log-scale rounding, same resolution as the winner
/// tolerance).
const QUANT_REL: f64 = 1e-3;

/// Collapse noise-level duration differences into exact ties: round
/// log-duration to multiples of `ln(1 + QUANT_REL)`.
fn quantize(us: f64) -> f64 {
    (us.ln() / (1.0 + QUANT_REL).ln()).round()
}

#[test]
fn static_ranking_matches_measurement_on_all_table1_configs() {
    let exp = Experiment::new(L, SEED);
    let mut problem = DslashProblem::<DoubleComplex>::random(L, SEED);
    let mut failures: Vec<String> = Vec::new();
    let mut exhaustive_launches = 0u64;
    let mut ranked_launches = 0u64;

    for col in paper::TABLE1 {
        let cfg = KernelConfig::new(col.strategy, col.order);
        let label = cfg.label();

        // Ground truth: exhaustive warm sweep over every legal size.
        let full = sweep_config(&mut problem, cfg, &exp.device, QueueMode::OutOfOrder)
            .unwrap_or_else(|e| panic!("{label}: exhaustive sweep failed: {e}"));
        let measured: Vec<(u32, f64)> = full
            .timed()
            .map(|p| (p.local_size, p.duration_us))
            .collect();
        assert!(
            measured.len() >= 2,
            "{label}: need at least two timed candidates to rank"
        );
        let winner_us = full.winner.duration_us;

        // Static side: every candidate must be estimable (the Table I
        // kernels are all affine; inestimable would be a model
        // regression), in predicted-duration order.
        let ranked = rank_candidates(&problem, cfg, &exp.device);
        let mut predicted: Vec<(u32, f64)> = Vec::new();
        for r in &ranked {
            match &r.estimate {
                Ok(e) => predicted.push((r.local_size, e.duration_us)),
                Err(why) => failures.push(format!(
                    "{label}: local size {} inestimable: {why}",
                    r.local_size
                )),
            }
        }

        // (2) the predicted top-K must contain a winner-class candidate:
        // one whose *measured* duration matches the measured winner's to
        // within the noise tolerance.  (Equivalently: the measured
        // winner's duration-equivalence class intersects the top-K.)
        let winner_rank = predicted
            .iter()
            .take(TOP_K)
            .position(|&(ls, _)| {
                measured
                    .iter()
                    .find(|&&(m, _)| m == ls)
                    .is_some_and(|&(_, us)| (us - winner_us).abs() / winner_us <= WINNER_REL_TOL)
            })
            .map(|i| i + 1);
        match winner_rank {
            Some(_) => {}
            None => failures.push(format!(
                "{label}: no predicted top-{TOP_K} candidate measures within {:.2}% of the \
                 measured winner {} @ {winner_us:.3} µs (predicted head: {:?})",
                WINNER_REL_TOL * 100.0,
                full.winner.local_size,
                &predicted[..TOP_K.min(predicted.len())],
            )),
        }

        // (3) Spearman rank correlation on quantized durations, pairing
        // by local size.
        let mut pred_v = Vec::new();
        let mut meas_v = Vec::new();
        for &(ls, pred_us) in &predicted {
            if let Some(&(_, meas_us)) = measured.iter().find(|&&(m, _)| m == ls) {
                pred_v.push(quantize(pred_us));
                meas_v.push(quantize(meas_us));
            }
        }
        let rho = spearman(&pred_v, &meas_v);
        if rho < MIN_SPEARMAN {
            failures.push(format!(
                "{label}: Spearman {rho:.3} < {MIN_SPEARMAN} \
                 (predicted {predicted:?} vs measured {measured:?})"
            ));
        }

        // (4) the ranked sweep lands on a winner-equivalent candidate
        // with far fewer sweep launches.
        let rsweep = sweep_config_with_mode(
            &mut problem,
            cfg,
            &exp.device,
            QueueMode::OutOfOrder,
            SweepMode::Ranked { time_top_k: TOP_K },
        )
        .unwrap_or_else(|e| panic!("{label}: ranked sweep failed: {e}"));
        let rel = (rsweep.winner.duration_us - winner_us).abs() / winner_us;
        if rel > WINNER_REL_TOL {
            failures.push(format!(
                "{label}: ranked winner {} @ {:.3} µs is {:.3}% off the exhaustive \
                 winner {} @ {winner_us:.3} µs",
                rsweep.winner.local_size,
                rsweep.winner.duration_us,
                rel * 100.0,
                full.winner.local_size,
            ));
        }
        exhaustive_launches += full.sweep_launches;
        ranked_launches += rsweep.sweep_launches;

        eprintln!(
            "{label:16} candidates {:2}  winner {:4} @ rank {:?}  spearman {rho:+.3}  \
             launches {:3} -> {}",
            measured.len(),
            full.winner.local_size,
            winner_rank,
            full.sweep_launches,
            rsweep.sweep_launches,
        );
    }

    // Aggregate pruning power across all twelve configurations: the
    // ranked sweep must avoid at least 60% of the exhaustive sweep's
    // launches (the `results/tune.md` gate, proven here too).
    let reduction = 1.0 - ranked_launches as f64 / exhaustive_launches as f64;
    eprintln!(
        "sweep launches: exhaustive {exhaustive_launches}, ranked {ranked_launches} \
         ({:.1}% avoided)",
        reduction * 100.0
    );
    if reduction < 0.6 {
        failures.push(format!(
            "ranked sweeps avoided only {:.1}% of sweep launches (< 60%)",
            reduction * 100.0
        ));
    }

    assert!(
        failures.is_empty(),
        "cost model vs measurement mismatches:\n  {}",
        failures.join("\n  ")
    );
}
