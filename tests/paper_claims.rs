//! Regression tests for the paper's headline claims (Sections IV-D and
//! V), asserted as *shape* relations with tolerant bands: who wins, in
//! what order, by roughly what factor.  Absolute GFLOP/s are covered by
//! the EXPERIMENTS.md comparison, not asserted here.
//!
//! Tests run on a reduced lattice with the volume-matched device (see
//! DESIGN.md); the relations tested are scale-stable by construction.

use gpu_sim::{DeviceSpec, QueueMode};
use milc_complex::{Cplx, DoubleComplex};
use milc_dslash::{run_config, DslashProblem, IndexOrder, IndexStyle, KernelConfig, Strategy};

const L: usize = 8;
const SEED: u64 = 2024;

fn device() -> DeviceSpec {
    let ratio = (L as f64 / 32.0).powi(4);
    DeviceSpec::a100().scaled_for_volume_ratio(ratio)
}

/// GFLOP/s of a configuration at a local size (default queue/style).
fn gflops(problem: &mut DslashProblem<DoubleComplex>, cfg: KernelConfig, ls: u32) -> f64 {
    let out = run_config(problem, cfg, ls, &device(), QueueMode::OutOfOrder)
        .unwrap_or_else(|e| panic!("{} @ {ls}: {e}", cfg.label()));
    assert!(
        out.error.within_reassociation_noise(),
        "{} @ {ls} failed validation: {:?}",
        cfg.label(),
        out.error
    );
    out.gflops
}

/// Best GFLOP/s of a configuration over its legal local sizes.
fn best(problem: &mut DslashProblem<DoubleComplex>, cfg: KernelConfig) -> f64 {
    let hv = problem.lattice().half_volume() as u64;
    cfg.legal_local_sizes(hv)
        .into_iter()
        .map(|ls| gflops(problem, cfg, ls))
        .fold(f64::NEG_INFINITY, f64::max)
}

fn cfg(s: Strategy, o: IndexOrder) -> KernelConfig {
    KernelConfig::new(s, o)
}

#[test]
fn claim_3lp1_is_about_2x_faster_than_1lp() {
    // Section V: "3LP-1 ... provide a 2x speedup over 1LP".
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let one = best(&mut p, cfg(Strategy::OneLp, IndexOrder::KMajor));
    let three = best(&mut p, cfg(Strategy::ThreeLp1, IndexOrder::KMajor));
    let speedup = three / one;
    assert!(
        (1.6..=2.6).contains(&speedup),
        "3LP-1 / 1LP speedup {speedup:.2} outside the ~2x band"
    );
}

#[test]
fn claim_performance_rises_to_3lp1_then_falls() {
    // Section IV-D1: "performance increases as the degree of parallelism
    // increases from 1LP to 3LP-1, and thereafter it gradually decreases
    // for 3LP-3, 3LP-2, 4LP-1, and 4LP-2."
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let ls = 96;
    let one = gflops(&mut p, cfg(Strategy::OneLp, IndexOrder::KMajor), 32);
    let two = gflops(&mut p, cfg(Strategy::TwoLp, IndexOrder::KMajor), ls);
    let t1 = gflops(&mut p, cfg(Strategy::ThreeLp1, IndexOrder::KMajor), ls);
    let t2 = gflops(&mut p, cfg(Strategy::ThreeLp2, IndexOrder::KMajor), ls);
    let t3 = gflops(&mut p, cfg(Strategy::ThreeLp3, IndexOrder::KMajor), ls);
    let f1 = gflops(&mut p, cfg(Strategy::FourLp1, IndexOrder::KMajor), ls);
    let f2 = gflops(&mut p, cfg(Strategy::FourLp2, IndexOrder::LMajor), ls);
    assert!(
        one < two && two < t1,
        "rise to 3LP-1 broken: {one:.0} {two:.0} {t1:.0}"
    );
    assert!(
        t1 > t2 && t2 > t3,
        "3LP ordering broken: {t1:.0} {t2:.0} {t3:.0}"
    );
    assert!(
        t3 > f1 && f1 > f2,
        "4LP fall broken: {t3:.0} {f1:.0} {f2:.0}"
    );
}

#[test]
fn claim_atomics_penalize_3lp2_and_3lp3() {
    // Section IV-D2: 3LP-2/3LP-3 lose up to 8.4%/7.4% versus 3LP-1.
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let ls = 96;
    let t1 = gflops(&mut p, cfg(Strategy::ThreeLp1, IndexOrder::KMajor), ls);
    let t2 = gflops(&mut p, cfg(Strategy::ThreeLp2, IndexOrder::KMajor), ls);
    let t3 = gflops(&mut p, cfg(Strategy::ThreeLp3, IndexOrder::KMajor), ls);
    let pen2 = 100.0 * (1.0 - t2 / t1);
    let pen3 = 100.0 * (1.0 - t3 / t1);
    assert!(pen2 > 0.0 && pen2 < 12.0, "3LP-2 penalty {pen2:.1}%");
    assert!(pen3 > 0.0 && pen3 < 12.0, "3LP-3 penalty {pen3:.1}%");
}

#[test]
fn claim_k_major_beats_i_major() {
    // Section IV-D7: k-major outperforms i-major in 31 of 36 cases.
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let ls = 96;
    for strategy in [
        Strategy::ThreeLp1,
        Strategy::ThreeLp2,
        Strategy::ThreeLp3,
        Strategy::FourLp1,
    ] {
        let k = gflops(&mut p, cfg(strategy, IndexOrder::KMajor), ls);
        let i = gflops(&mut p, cfg(strategy, IndexOrder::IMajor), ls);
        assert!(
            k > i * 0.99,
            "{}: k-major {k:.0} unexpectedly behind i-major {i:.0}",
            strategy.name()
        );
    }
}

#[test]
fn claim_4lp1_slowdown_vs_3lp1_in_band() {
    // Section IV-D8: "4LP-1 shows a performance decline of 13.2-29.0%
    // compared to 3LP-1" (band widened for the reduced lattice).
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let t1 = best(&mut p, cfg(Strategy::ThreeLp1, IndexOrder::KMajor));
    let f1 = best(&mut p, cfg(Strategy::FourLp1, IndexOrder::KMajor));
    let decline = 100.0 * (1.0 - f1 / t1);
    assert!(
        (8.0..=40.0).contains(&decline),
        "4LP-1 decline {decline:.1}% outside the band"
    );
}

#[test]
fn claim_4lp2_l_major_beats_i_major() {
    // Section IV-D8: l-major outperforms i-major by 8.2-11.0% because
    // active work-items cluster in runs of 3 instead of 1.
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let ls = 96;
    let lm = gflops(&mut p, cfg(Strategy::FourLp2, IndexOrder::LMajor), ls);
    let im = gflops(&mut p, cfg(Strategy::FourLp2, IndexOrder::IMajor), ls);
    let adv = 100.0 * (lm / im - 1.0);
    assert!(
        (4.0..=25.0).contains(&adv),
        "4LP-2 l-major advantage {adv:.1}% outside the band"
    );
}

#[test]
fn claim_in_order_queue_beats_out_of_order() {
    // Section IV-D6: in-order advantage 1.5-6.7%.
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let c = cfg(Strategy::ThreeLp1, IndexOrder::KMajor);
    let d = device();
    let ooo = run_config(&mut p, c, 96, &d, QueueMode::OutOfOrder).unwrap();
    let ino = run_config(&mut p, c, 96, &d, QueueMode::InOrder).unwrap();
    let adv = 100.0 * (ino.gflops / ooo.gflops - 1.0);
    assert!(
        (0.5..=8.0).contains(&adv),
        "in-order advantage {adv:.2}% outside the 1.5-6.7% neighbourhood"
    );
}

#[test]
fn claim_composed_indexing_is_slower() {
    // Section IV-D6: the unoptimized SYCLomatic indexing costs
    // 10.0-12.2% (our mapping-locality model recovers roughly half of
    // it; see EXPERIMENTS.md).
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let d = device();
    let direct = cfg(Strategy::ThreeLp1, IndexOrder::KMajor);
    let composed = KernelConfig {
        index_style: IndexStyle::Composed,
        ..direct
    };
    let a = run_config(&mut p, direct, 96, &d, QueueMode::InOrder).unwrap();
    let b = run_config(&mut p, composed, 96, &d, QueueMode::InOrder).unwrap();
    assert!(b.error.within_reassociation_noise(), "composed run invalid");
    let pen = 100.0 * (1.0 - b.gflops / a.gflops);
    assert!(
        (2.0..=20.0).contains(&pen),
        "composed-indexing penalty {pen:.1}% outside the band"
    );
}

#[test]
fn claim_register_cap_helps() {
    // Section IV-D4: -maxrregcount 64 gains up to 3.6% by eliminating
    // spills.
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let d = device();
    let base = cfg(Strategy::ThreeLp1, IndexOrder::KMajor);
    let capped = KernelConfig {
        spills_per_item: 0,
        ..base
    };
    let a = run_config(&mut p, base, 96, &d, QueueMode::InOrder).unwrap();
    let b = run_config(&mut p, capped, 96, &d, QueueMode::InOrder).unwrap();
    let gain = 100.0 * (b.gflops / a.gflops - 1.0);
    assert!(
        (1.0..=12.0).contains(&gain),
        "register-cap gain {gain:.1}% outside the band"
    );
}

#[test]
fn claim_syclcplx_within_3_percent() {
    // Section IV-D5: SyclCPLX differences below 3%.
    let d = device();
    let c = cfg(Strategy::ThreeLp1, IndexOrder::KMajor);
    let mut p1 = DslashProblem::<DoubleComplex>::random(L, SEED);
    let mut p2 = DslashProblem::<Cplx>::random(L, SEED);
    let a = run_config(&mut p1, c, 96, &d, QueueMode::OutOfOrder).unwrap();
    let b = run_config(&mut p2, c, 96, &d, QueueMode::OutOfOrder).unwrap();
    let delta = 100.0 * (b.gflops / a.gflops - 1.0).abs();
    assert!(delta < 3.0, "SyclCPLX delta {delta:.2}% exceeds 3%");
}

/// QUDA comparisons need a lattice large enough that the thread-per-site
/// baseline fills the (scaled) device the way L = 32 fills the A100;
/// run in release (`cargo test --release`), skipped under debug because
/// the L = 12 simulation is slow unoptimized.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with --release"
)]
fn claim_3lp1_beats_quda_recon18_and_recon_orders() {
    use quda_ref::{Recon, StaggeredDslashTest};
    let l = 16;
    let ratio = (l as f64 / 32.0).powi(4);
    let d = DeviceSpec::a100().scaled_for_volume_ratio(ratio);

    let g18 = StaggeredDslashTest::random(l, SEED, Recon::R18)
        .run(&d)
        .unwrap()
        .gflops;
    let g12 = StaggeredDslashTest::random(l, SEED, Recon::R12)
        .run(&d)
        .unwrap()
        .gflops;
    let g9 = StaggeredDslashTest::random(l, SEED, Recon::R9)
        .run(&d)
        .unwrap()
        .gflops;
    // Section IV-D3: compression monotonically helps QUDA.
    assert!(
        g12 > g18 && g9 > g12,
        "recon ordering broken: {g18:.0} {g12:.0} {g9:.0}"
    );

    // All 3LP-1 variants outperform QUDA recon-18, best by ~10%
    // (band widened to cover the reduced scale).
    let mut p = DslashProblem::<DoubleComplex>::random(l, SEED);
    let base = cfg(Strategy::ThreeLp1, IndexOrder::KMajor);
    let hv = p.lattice().half_volume() as u64;
    let mut best_gf = f64::NEG_INFINITY;
    for ls in base.legal_local_sizes(hv) {
        // The best variant: CUDA with the register cap (in-order queue,
        // no spills), Section IV-D4.
        let capped = KernelConfig {
            spills_per_item: 0,
            ..base
        };
        let out = run_config(&mut p, capped, ls, &d, QueueMode::InOrder).unwrap();
        best_gf = best_gf.max(out.gflops);
    }
    let improvement = 100.0 * (best_gf / g18 - 1.0);
    assert!(
        (3.0..=35.0).contains(&improvement),
        "best 3LP-1 variant over QUDA recon-18: {improvement:.1}% outside the band"
    );
}

#[test]
fn claim_4lp2_i_major_underperforms_2lp() {
    // Section IV-D8: "4LP-2 in i-major order even underperforming 2LP
    // by 3.9-26.3% in 3 out of 4 local sizes" — the fully-parallel
    // strategy with the worst active-lane clustering loses to the
    // medium-grained one (band widened for the reduced lattice).
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let two = best(&mut p, cfg(Strategy::TwoLp, IndexOrder::KMajor));
    let f2i = best(&mut p, cfg(Strategy::FourLp2, IndexOrder::IMajor));
    let deficit = 100.0 * (1.0 - f2i / two);
    assert!(
        (3.0..=45.0).contains(&deficit),
        "4LP-2 i-major vs 2LP deficit {deficit:.1}% outside the band"
    );
}

#[test]
fn claim_best_4lp_order_beats_worst_by_16_to_23_pct() {
    // Section IV-D8: "The optimal work-item index order (Fig. 4a) can
    // lead to performance improvements of 16.3-23.4% over the
    // worst-performing one (Fig. 5b)" — 4LP-1 k-major vs 4LP-2 i-major.
    let mut p = DslashProblem::<DoubleComplex>::random(L, SEED);
    let ls = 96;
    let best_order = gflops(&mut p, cfg(Strategy::FourLp1, IndexOrder::KMajor), ls);
    let worst_order = gflops(&mut p, cfg(Strategy::FourLp2, IndexOrder::IMajor), ls);
    let improvement = 100.0 * (best_order / worst_order - 1.0);
    assert!(
        (10.0..=35.0).contains(&improvement),
        "best-vs-worst 4LP order improvement {improvement:.1}% outside the band"
    );
}
