//! Cross-crate integration tests: the full pipeline from field
//! generation through device packing, simulation, queueing and the
//! SYCLomatic migration, plus determinism guarantees.

use gpu_sim::{DeviceSpec, ExecMode, Launcher, QueueMode};
use milc_complex::DoubleComplex;
use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, Strategy};
use syclomatic_sim::{migrate, CudaLaunch, Dim3, MigrationOptions};

#[test]
fn full_pipeline_all_parities_and_seeds() {
    use milc_lattice::{GaugeField, Parity, QuarkField};
    let lattice = milc_lattice::Lattice::hypercubic(4);
    let device = DeviceSpec::test_small();
    for (seed, parity) in [(1u64, Parity::Even), (2, Parity::Odd)] {
        let gauge = GaugeField::<DoubleComplex>::random(&lattice, seed);
        let b = QuarkField::<DoubleComplex>::random(&lattice, seed + 100);
        let mut problem = DslashProblem::from_fields(gauge, b, parity);
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let out = run_config(&mut problem, cfg, 96, &device, QueueMode::InOrder).unwrap();
        assert!(
            out.error.within_reassociation_noise(),
            "parity {parity:?}: {:?}",
            out.error
        );
    }
}

#[test]
fn repeated_launches_are_deterministic() {
    let device = DeviceSpec::test_small();
    let run = || {
        let mut p = DslashProblem::<DoubleComplex>::random(4, 77);
        let cfg = KernelConfig::new(Strategy::FourLp2, IndexOrder::LMajor);
        run_config(&mut p, cfg, 96, &device, QueueMode::OutOfOrder).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.counters, b.report.counters);
    assert_eq!(a.report.duration_us, b.report.duration_us);
    assert_eq!(a.gflops, b.gflops);
}

#[test]
fn sequential_and_parallel_modes_agree_on_order_free_counters() {
    let device = DeviceSpec::test_small();
    let p = DslashProblem::<DoubleComplex>::random(4, 5);
    let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
    let range = p.launch_range(cfg, 96);
    let kernel = p.make_kernel(cfg, range.num_groups());

    p.zero_output();
    let seq = Launcher::new(&device)
        .launch(kernel.as_ref(), range, p.memory())
        .unwrap();
    let seq_out = p.read_output();

    p.zero_output();
    let par = Launcher::new(&device)
        .with_mode(ExecMode::ParallelSms)
        .launch(kernel.as_ref(), range, p.memory())
        .unwrap();
    let par_out = p.read_output();

    // Results identical (disjoint writes).
    assert_eq!(seq_out.len(), par_out.len());
    for (a, b) in seq_out.iter().zip(&par_out) {
        for i in 0..3 {
            assert_eq!(a.c[i], b.c[i]);
        }
    }
    // Execution-order-free counters identical.
    assert_eq!(seq.counters.items, par.counters.items);
    assert_eq!(seq.counters.flops, par.counters.flops);
    assert_eq!(
        seq.counters.l1_tag_requests_global,
        par.counters.l1_tag_requests_global
    );
    assert_eq!(
        seq.counters.shared_wavefronts,
        par.counters.shared_wavefronts
    );
    assert_eq!(
        seq.counters.divergent_branches,
        par.counters.divergent_branches
    );
    // L2-dependent counters may drift (per-SM slices); bound it.
    let drift = (seq.counters.l2_sector_misses as f64 - par.counters.l2_sector_misses as f64).abs()
        / seq.counters.l2_sector_misses.max(1) as f64;
    assert!(drift < 0.35, "L2 slice drift {drift:.2} too large");
}

#[test]
fn migrated_launch_runs_the_kernel_correctly() {
    // End-to-end SYCLomatic path: migrate a CUDA-style 3LP-1 launch,
    // then run the kernel under the migrated configuration.
    let l = 4;
    let mut problem = DslashProblem::<DoubleComplex>::random(l, 31);
    let hv = problem.lattice().half_volume() as u64;
    let local = 96u32;
    let grid = (hv * 12 / local as u64) as u32;

    let migrated = migrate(
        CudaLaunch {
            grid: Dim3::linear(grid),
            block: Dim3::linear(local),
            shared_bytes: local * 16,
        },
        MigrationOptions::default(),
    );
    assert_eq!(migrated.nd_range.global, hv * 12);
    assert_eq!(migrated.queue_mode, QueueMode::InOrder);

    let cfg = KernelConfig {
        index_style: migrated.index_style,
        ..KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor)
    };
    let device = DeviceSpec::test_small();
    let out = run_config(
        &mut problem,
        cfg,
        migrated.nd_range.local,
        &device,
        migrated.queue_mode,
    )
    .unwrap();
    assert!(
        out.error.within_reassociation_noise(),
        "migrated kernel mismatch: {:?}",
        out.error
    );
}

#[test]
fn quda_and_milc_agree_on_the_same_fields() {
    // The two independent device implementations (QUDA-style packing and
    // the SYCL-layout packing) must compute the same operator.
    use milc_lattice::{GaugeField, Parity, QuarkField};
    use quda_ref::{Recon, StaggeredDslashTest};
    let lattice = milc_lattice::Lattice::hypercubic(4);
    let gauge = GaugeField::<DoubleComplex>::random(&lattice, 911);
    let b = QuarkField::<DoubleComplex>::random(&lattice, 912);
    let device = DeviceSpec::test_small();

    let quda = StaggeredDslashTest::from_fields(gauge.clone(), b.clone(), Parity::Even, Recon::R18);
    quda.run(&device).unwrap();
    let quda_out = quda.read_output();

    let mut milc = DslashProblem::from_fields(gauge, b, Parity::Even);
    let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
    run_config(&mut milc, cfg, 96, &device, QueueMode::InOrder).unwrap();
    let milc_out = milc.read_output();

    let err = milc_dslash::compare_to_reference(&quda_out, &milc_out);
    assert!(err.rel < 1e-10, "QUDA vs MILC disagreement: {err:?}");
}

#[test]
fn solver_runs_on_top_of_validated_gauge() {
    // CG on the normal operator built from the same gauge field the
    // device kernels validated against.
    use milc_lattice::GaugeField;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let lattice = milc_lattice::Lattice::hypercubic(4);
    let gauge = GaugeField::<DoubleComplex>::random(&lattice, 13);
    let mut rng = StdRng::seed_from_u64(14);
    let b: Vec<_> = (0..lattice.half_volume())
        .map(|_| {
            milc_lattice::ColorVector::new(
                DoubleComplex::new(rng.gen_range(-1.0..1.0), 0.0),
                DoubleComplex::new(rng.gen_range(-1.0..1.0), 0.0),
                DoubleComplex::new(rng.gen_range(-1.0..1.0), 0.0),
            )
        })
        .collect();
    let sol = milc_dslash::solver::solve(&gauge, &b, 0.5, 1e-9, 1000);
    assert!(sol.converged, "CG residual {}", sol.relative_residual);
}
