//! Static analysis of the *sharded* Dslash (ROADMAP's "extend the
//! analyzer to the sharded boundary kernels"): every launch a
//! domain-decomposed run performs — each rank's interior and boundary
//! phase — must be provable by `staticcheck_kernel` exactly like the
//! single-device launches: clean findings, non-empty footprints, no
//! probe failures.  The boundary phase is the interesting one: its
//! kernel runs off *offset* views of the target/output tables
//! (`RankProblem::tables_for`), over a target count that differs from
//! rank to rank whenever the t-extent does not divide evenly, so any
//! sloppiness in the analyzer's affine fitting or bounds proofs shows
//! up here first.
//!
//! Two regimes are covered:
//!
//! * **L = 8 across 3 ranks** — deliberately uneven (`t_len` 3/3/2,
//!   so per-rank global sizes differ) and thin enough that *every*
//!   target reads a ghost: the interior phase is empty and the
//!   boundary phase is the whole slab.
//! * **L = 16 across 2 ranks** (`#[ignore]`, with the other L = 16
//!   shard tests) — slabs thick enough that interior and boundary
//!   genuinely split, so both phase kernels get analyzed per rank.

use gpu_sim::{DeviceSpec, StaticCheckConfig};
use milc_bench::paper;
use milc_complex::DoubleComplex as Z;
use milc_dslash::shard::{Phase, RankProblem, ShardedProblem};
use milc_dslash::staticcheck::staticcheck_kernel;
use milc_dslash::KernelConfig;

const SEED: u64 = 2024;

/// Largest legal local size for `n` targets not above the paper's
/// choice for the strategy — the same fit the shard runner applies to
/// a requested size.
fn fit_local_size(cfg: KernelConfig, n: u64) -> u32 {
    let requested = paper::table1_local_size(cfg.strategy);
    if cfg.local_size_legal(requested, n) {
        return requested;
    }
    cfg.legal_local_sizes(n)
        .into_iter()
        .filter(|&ls| ls <= requested)
        .max()
        .unwrap_or_else(|| cfg.strategy.local_size_multiple(cfg.order))
}

/// Statically analyze one phase of one rank; panics on any finding.
/// Returns `false` if the phase is empty (nothing to launch, nothing
/// to analyze).
fn check_phase(
    rank: &RankProblem<Z>,
    cfg: KernelConfig,
    phase: Phase,
    device: &DeviceSpec,
) -> bool {
    let n = rank.phase_targets(phase);
    if n == 0 {
        assert!(
            rank.make_kernel(cfg, phase, 1).is_none(),
            "{}: empty phase {phase:?} must not build a kernel",
            cfg.label()
        );
        return false;
    }
    let ls = fit_local_size(cfg, n);
    let range = rank.launch_range(cfg, phase, ls);
    let kernel = rank
        .make_kernel(cfg, phase, range.num_groups())
        .expect("non-empty phase has a kernel");
    let label = format!("{} rank{} {:?}", cfg.label(), rank.rank(), phase);
    let report = staticcheck_kernel(
        kernel.as_ref(),
        &range,
        device,
        rank.memory(),
        &StaticCheckConfig::tuner(),
        &label,
    );
    assert!(report.is_clean(), "{label}:\n{}", report.render_text());
    assert!(report.probes > 0, "{label}: analyzer probed nothing");
    assert!(
        !report.footprints.is_empty(),
        "{label}: no footprints fitted"
    );
    true
}

#[test]
fn uneven_three_rank_boundary_launches_are_statically_clean() {
    let device = DeviceSpec::test_small();
    let sharded = ShardedProblem::<Z>::random(8, SEED, 3);

    // The uneven split this test exists for: 8 t-planes over 3 ranks is
    // t_len 3/3/2, i.e. 768/768/512 targets — per-rank asymmetric
    // launch geometry.
    let targets: Vec<u64> = (0..3).map(|r| sharded.rank(r).n_targets()).collect();
    assert_eq!(targets, vec![768, 768, 512]);

    for col in paper::TABLE1 {
        let cfg = KernelConfig::new(col.strategy, col.order);
        for r in 0..sharded.num_ranks() {
            let rank = sharded.rank(r);
            // Slabs ≤ 3 planes deep with a 3-deep stencil: every target
            // touches a ghost, so interior is empty and boundary is the
            // whole slab.
            assert_eq!(rank.n_interior(), 0, "{} rank {r}", cfg.label());
            assert!(!check_phase(rank, cfg, Phase::Interior, &device));
            assert!(
                check_phase(rank, cfg, Phase::Boundary, &device),
                "{} rank {r}: boundary phase unexpectedly empty",
                cfg.label()
            );
        }
    }
}

#[test]
#[ignore = "L = 16 build is slow; run with --ignored alongside the other L = 16 shard tests"]
fn split_interior_and_boundary_launches_are_statically_clean_l16() {
    let device = DeviceSpec::test_small();
    let sharded = ShardedProblem::<Z>::random(16, SEED, 2);
    for col in paper::TABLE1 {
        let cfg = KernelConfig::new(col.strategy, col.order);
        for r in 0..sharded.num_ranks() {
            let rank = sharded.rank(r);
            // 8-plane slabs with a 3-deep stencil split for real: both
            // phases non-empty, both analyzed.
            assert!(rank.n_interior() > 0, "{} rank {r}", cfg.label());
            assert!(rank.n_boundary() > 0, "{} rank {r}", cfg.label());
            assert!(check_phase(rank, cfg, Phase::Interior, &device));
            assert!(check_phase(rank, cfg, Phase::Boundary, &device));
        }
    }
}
