//! Sanitizer quality gates (DESIGN §7): every shipped kernel
//! configuration certifies clean under the full sanitizer, each defect
//! fixture is flagged with *exactly one* finding of its class under the
//! matching single-check configuration, and the launch linter catches
//! the misconfigurations the runtime cannot.

use gpu_sim::{
    lint_launch, DeviceSpec, FindingKind, Kernel, KernelResources, Launcher, LintKind, NdRange,
    SanitizerConfig, SanitizerReport, StaticCheckConfig,
};
use milc_complex::DoubleComplex as Z;
use milc_dslash::{
    run_config_sanitized, staticcheck_kernel, AliasingSwizzle, BrokenBarrierThreeLp1,
    DslashProblem, KernelConfig, OobGaugeIndex, PlainStoreThreeLp3, SharedLayout, Strategy,
    UninitCRead,
};

const L: usize = 4;
const HV: u64 = 128; // 4^4 / 2

fn local_size_for(strategy: Strategy) -> u32 {
    match strategy {
        Strategy::OneLp => 64, // global size is only 128 at L = 4
        _ => 96,
    }
}

#[test]
fn all_twelve_configurations_certify_clean() {
    let device = DeviceSpec::test_small();
    let mut problem = DslashProblem::<Z>::random(L, 41);
    for strategy in Strategy::ALL {
        for &order in strategy.orders() {
            let cfg = KernelConfig::new(strategy, order);
            let report = run_config_sanitized(
                &mut problem,
                cfg,
                local_size_for(strategy),
                &device,
                SanitizerConfig::default(),
            )
            .expect("legal configuration launches under the sanitizer");
            let san = report.sanitizer.expect("sanitized launch has a report");
            assert!(
                san.is_clean(),
                "{} not clean: {:?}",
                cfg.label(),
                san.findings
            );
            assert!(san.checked_accesses > 0, "{} checked nothing", cfg.label());
        }
    }
}

#[test]
fn sanitized_result_still_matches_reference() {
    let device = DeviceSpec::test_small();
    let mut problem = DslashProblem::<Z>::random(L, 42);
    let cfg = KernelConfig::new(Strategy::ThreeLp1, milc_dslash::IndexOrder::KMajor);
    run_config_sanitized(&mut problem, cfg, 96, &device, SanitizerConfig::default())
        .expect("launches");
    let out = problem.read_output();
    let err = milc_dslash::compare_to_reference(&out, problem.reference());
    assert!(
        err.within_reassociation_noise(),
        "sanitized run corrupted the result: {err:?}"
    );
}

#[test]
fn swizzled_local_layouts_certify_clean_under_racecheck() {
    // The XOR swizzle remaps which local bytes a lane touches; if the
    // mapping aliased, two writers of one phase would collide and the
    // race checker would see it.  Every local-memory strategy must stay
    // racecheck-clean (and bitwise correct) under the swizzled layout.
    use milc_dslash::IndexOrder::{IMajor, KMajor, LMajor};
    let device = DeviceSpec::test_small();
    let mut problem = DslashProblem::<Z>::random(L, 48);
    for (strategy, order) in [
        (Strategy::ThreeLp1, KMajor),
        (Strategy::ThreeLp1, IMajor),
        (Strategy::ThreeLp2, KMajor),
        (Strategy::FourLp1, KMajor),
        (Strategy::FourLp2, LMajor),
    ] {
        let cfg =
            KernelConfig::new(strategy, order).with_layout(SharedLayout::Swizzled { xor_bits: 2 });
        for san in [
            SanitizerConfig::racecheck_only(),
            SanitizerConfig::default(),
        ] {
            let report =
                run_config_sanitized(&mut problem, cfg, local_size_for(strategy), &device, san)
                    .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
            let san_report = report.sanitizer.expect("sanitized launch has a report");
            assert!(
                san_report.is_clean(),
                "{} not clean: {:?}",
                cfg.label(),
                san_report.findings
            );
            assert!(
                san_report.checked_accesses > 0,
                "{} checked nothing",
                cfg.label()
            );
        }
        let out = problem.read_output();
        let err = milc_dslash::compare_to_reference(&out, problem.reference());
        assert!(
            err.within_reassociation_noise(),
            "{} corrupted the result: {err:?}",
            cfg.label()
        );
    }
}

#[test]
fn aliasing_swizzle_is_flagged_by_racecheck_and_static_proof() {
    // The in-place XOR swizzle (no chunk pad) is not injective:
    // element 31's block overlaps element 32's, so two lanes of one
    // phase write the same local bytes.  The dynamic race checker must
    // see the collision, and the static local-race proof must derive it
    // from the offset map alone — same bug, two independent detectors.
    let problem = DslashProblem::<Z>::random(L, 49);
    let kernel = AliasingSwizzle::new(problem.tables());
    let range = NdRange::linear(HV * 12, 96);
    let device = DeviceSpec::test_small();

    let san = Launcher::new(&device)
        .with_sanitizer(SanitizerConfig::racecheck_only())
        .launch(&kernel, range, problem.memory())
        .expect("the defect launches under tolerant lanes")
        .sanitizer
        .expect("sanitized launch has a report");
    assert!(
        san.count_class("race") >= 1,
        "dynamic racecheck missed the aliasing swizzle: {:?}",
        san.findings
    );
    assert_eq!(san.findings[0].kind, FindingKind::LocalRace);

    let srep = staticcheck_kernel(
        &kernel,
        &range,
        &device,
        problem.memory(),
        &StaticCheckConfig::default(),
        kernel.name(),
    );
    assert!(
        srep.count_class("race") >= 1,
        "static analysis missed the aliasing swizzle: {:?}",
        srep.findings
    );
}

/// Launch one defect kernel under `san` against a fresh problem whose
/// output buffer has never been written.
fn run_defect<K: Kernel>(
    build: impl FnOnce(milc_dslash::kernels::common::DevTables) -> K,
    global_per_site: u64,
    local: u32,
    san: SanitizerConfig,
) -> SanitizerReport {
    let problem = DslashProblem::<Z>::random(L, 43);
    let kernel = build(problem.tables());
    let range = NdRange::linear(HV * global_per_site, local);
    Launcher::new(&DeviceSpec::test_small())
        .with_sanitizer(san)
        .launch(&kernel, range, problem.memory())
        .expect("defect kernels launch under tolerant lanes")
        .sanitizer
        .expect("sanitized launch has a report")
}

fn tables() -> milc_dslash::kernels::common::DevTables {
    DslashProblem::<Z>::random(L, 43).tables()
}

#[test]
fn broken_barrier_is_exactly_one_race_finding() {
    let san = run_defect(
        BrokenBarrierThreeLp1::new,
        12,
        96,
        SanitizerConfig::racecheck_only(),
    );
    assert_eq!(san.findings.len(), 1, "{:?}", san.findings);
    assert_eq!(san.findings[0].kind, FindingKind::LocalRace);
    assert_eq!(san.count_class("race"), 1);
    assert!(
        san.findings[0].occurrences > 1,
        "race repeats in every group"
    );
}

#[test]
fn plain_store_is_exactly_one_race_finding_on_c() {
    let san = run_defect(
        PlainStoreThreeLp3::new,
        12,
        96,
        SanitizerConfig::racecheck_only(),
    );
    assert_eq!(san.findings.len(), 1, "{:?}", san.findings);
    assert_eq!(
        san.findings[0].kind,
        FindingKind::GlobalRace {
            label: "C".to_string()
        }
    );
}

#[test]
fn oob_gauge_index_is_exactly_one_memcheck_finding() {
    let san = run_defect(OobGaugeIndex::new, 1, 64, SanitizerConfig::memcheck_only());
    assert_eq!(san.findings.len(), 1, "{:?}", san.findings);
    assert_eq!(
        san.findings[0].kind,
        FindingKind::GlobalOutOfBounds {
            label: Some("spill".to_string())
        }
    );
    assert_eq!(san.count_class("memcheck"), 1);
}

#[test]
fn uninit_c_read_is_exactly_one_uninit_finding() {
    let san = run_defect(UninitCRead::new, 3, 96, SanitizerConfig::initcheck_only());
    assert_eq!(san.findings.len(), 1, "{:?}", san.findings);
    assert_eq!(
        san.findings[0].kind,
        FindingKind::GlobalUninitRead {
            label: "C".to_string()
        }
    );
}

#[test]
fn broken_barrier_lints_local_mem_without_barrier() {
    let san = run_defect(
        BrokenBarrierThreeLp1::new,
        12,
        96,
        SanitizerConfig::lint_only(),
    );
    assert_eq!(san.findings.len(), 1, "{:?}", san.findings);
    assert_eq!(
        san.findings[0].kind,
        FindingKind::Lint(LintKind::LocalMemNoBarrier)
    );
}

#[test]
fn linter_catches_site_block_mismatch_the_runtime_rejects() {
    // A local size of 64 divides 3LP's global size and is warp-aligned,
    // but splits the 12-item site blocks across group boundaries; the
    // runtime rejects it outright, the linter names the reason.
    let device = DeviceSpec::test_small();
    let problem = DslashProblem::<Z>::random(L, 44);
    let kernel = problem.make_kernel(
        KernelConfig::new(Strategy::ThreeLp1, milc_dslash::IndexOrder::KMajor),
        HV * 12 / 64,
    );
    let res = kernel.resources(64);
    let findings = lint_launch(
        &device,
        &NdRange::linear(HV * 12, 64),
        &res,
        kernel.num_phases(),
        kernel.local_size_multiple(),
    );
    assert!(
        findings
            .iter()
            .any(|f| f.kind == FindingKind::Lint(LintKind::SiteBlockMismatch)),
        "{findings:?}"
    );
}

#[test]
fn shipped_kernels_declare_their_site_blocks() {
    let problem = DslashProblem::<Z>::random(L, 45);
    let multiple = |s, o| {
        problem
            .make_kernel(KernelConfig::new(s, o), 1)
            .local_size_multiple()
    };
    use milc_dslash::IndexOrder::{IMajor, KMajor, LMajor};
    assert_eq!(multiple(Strategy::OneLp, KMajor), 1);
    assert_eq!(multiple(Strategy::TwoLp, KMajor), 1);
    assert_eq!(multiple(Strategy::ThreeLp1, KMajor), 12);
    assert_eq!(multiple(Strategy::ThreeLp1, IMajor), 4);
    assert_eq!(multiple(Strategy::ThreeLp3, KMajor), 12);
    assert_eq!(multiple(Strategy::FourLp1, KMajor), 48);
    assert_eq!(multiple(Strategy::FourLp2, LMajor), 48);
    // The defect fixtures, too.
    let t = problem.tables();
    assert_eq!(BrokenBarrierThreeLp1::new(t).local_size_multiple(), 12);
    assert_eq!(PlainStoreThreeLp3::new(t).local_size_multiple(), 12);
    assert_eq!(OobGaugeIndex::new(t).local_size_multiple(), 1);
}

#[test]
fn sharded_boundary_kernels_certify_clean_under_racecheck() {
    // The boundary-phase kernels of the sharded Dslash run over a
    // re-based target table (offset by the interior count) against a B
    // buffer extended with the ghost region — exactly the index
    // arithmetic a race or out-of-bounds bug would live in.  Every
    // race-prone strategy class must certify clean on its boundary
    // phase, under both the race checker alone and the full sanitizer.
    use gpu_sim::DeviceGroup;
    use milc_dslash::shard::{run_rank_sanitized, ShardedProblem};
    use milc_dslash::IndexOrder::{IMajor, KMajor, LMajor};

    let device = DeviceSpec::test_small();
    let group = DeviceGroup::homogeneous(device.clone(), 2, gpu_sim::Interconnect::nvlink());
    let mut problem = ShardedProblem::<Z>::random(L, 47, group.len());
    for (strategy, order) in [
        (Strategy::ThreeLp1, KMajor),
        (Strategy::ThreeLp2, IMajor),
        (Strategy::ThreeLp3, KMajor),
        (Strategy::FourLp1, KMajor),
        (Strategy::FourLp2, LMajor),
        (Strategy::OneLp, KMajor),
    ] {
        let cfg = KernelConfig::new(strategy, order);
        for san in [
            SanitizerConfig::racecheck_only(),
            SanitizerConfig::default(),
        ] {
            for rank in 0..group.len() {
                let report = run_rank_sanitized(
                    &mut problem,
                    cfg,
                    rank,
                    local_size_for(strategy),
                    &device,
                    san.clone(),
                )
                .unwrap_or_else(|e| panic!("{} rank {rank}: {e}", cfg.label()));
                let san_report = report.sanitizer.expect("sanitized launch has a report");
                assert!(
                    san_report.is_clean(),
                    "{} boundary phase rank {rank}: {:?}",
                    cfg.label(),
                    san_report.findings
                );
                assert!(
                    san_report.checked_accesses > 0,
                    "{} rank {rank} checked nothing",
                    cfg.label()
                );
            }
        }
    }
}

#[test]
fn every_tuner_candidate_passes_the_launch_linter() {
    // The tuner must only propose configurations `sancheck` would
    // certify: every candidate local size it sweeps, for every Table I
    // configuration, produces zero findings from the static launch
    // linter — the same `Launcher::with_sanitizer` gate of PR 1.
    let device = DeviceSpec::test_small();
    let problem = DslashProblem::<Z>::random(L, 46);
    for strategy in Strategy::ALL {
        for &order in strategy.orders() {
            let cfg = KernelConfig::new(strategy, order);
            let candidates = milc_dslash::tune::candidate_local_sizes(cfg, HV);
            assert!(
                !candidates.is_empty(),
                "{} has no candidates at L = {L}",
                cfg.label()
            );
            for ls in candidates {
                let range = NdRange::linear(cfg.global_size(HV), ls);
                let kernel = problem.make_kernel(cfg, range.num_groups());
                let findings = lint_launch(
                    &device,
                    &range,
                    &kernel.resources(ls),
                    kernel.num_phases(),
                    kernel.local_size_multiple(),
                );
                assert!(
                    findings.is_empty(),
                    "tuner candidate {} @ {ls} has lint findings: {findings:?}",
                    cfg.label()
                );
            }
        }
    }
}

#[test]
fn tuner_candidates_are_pinned_per_strategy() {
    // The candidate sets at L = 4 (half-volume 128), frozen: the
    // k-major sets follow the paper's multiples-of-96 rule (3LP) and
    // the 4LP multiples-of-96 = lcm(48, 32) rule; i-major admits every
    // warp multiple that divides the global size.  A change here means
    // the divisibility rules themselves changed — which is a paper
    //-conformance bug, not a tuning detail.
    use milc_dslash::tune::candidate_local_sizes;
    use milc_dslash::IndexOrder::{IMajor, KMajor, LMajor};
    let c = |s, o| candidate_local_sizes(KernelConfig::new(s, o), HV);
    assert_eq!(c(Strategy::OneLp, KMajor), vec![32, 64, 128]);
    assert_eq!(c(Strategy::TwoLp, KMajor), vec![32, 64, 96, 128, 192, 384]);
    assert_eq!(c(Strategy::ThreeLp1, KMajor), vec![96, 192, 384, 768]);
    assert_eq!(
        c(Strategy::ThreeLp1, IMajor),
        vec![32, 64, 96, 128, 192, 256, 384, 512, 768]
    );
    assert_eq!(c(Strategy::ThreeLp2, KMajor), vec![96, 192, 384, 768]);
    assert_eq!(c(Strategy::ThreeLp3, KMajor), vec![96, 192, 384, 768]);
    assert_eq!(c(Strategy::FourLp1, KMajor), vec![96, 192, 384, 768]);
    assert_eq!(c(Strategy::FourLp1, IMajor), vec![96, 192, 384, 768]);
    assert_eq!(c(Strategy::FourLp2, LMajor), vec![96, 192, 384, 768]);
    assert_eq!(c(Strategy::FourLp2, IMajor), vec![96, 192, 384, 768]);
}

#[test]
fn kernel_resources() {
    // The defect fixtures mirror the originals' local-memory shape, so
    // occupancy and lint see the configurations the bugs live in.
    let t = tables();
    assert_eq!(
        BrokenBarrierThreeLp1::new(t).resources(96),
        KernelResources {
            registers_per_item: 32,
            local_mem_bytes_per_group: 96 * 16
        }
    );
    assert_eq!(
        PlainStoreThreeLp3::new(t)
            .resources(96)
            .local_mem_bytes_per_group,
        0
    );
    assert_eq!(UninitCRead::new(t).num_phases(), 1);
    assert_eq!(PlainStoreThreeLp3::new(t).num_phases(), 2);
}
