//! Golden snapshot of the static analyzer's verdicts: the rendered
//! `StaticReport` for each of the twelve Table I configurations at
//! L = 8 is pinned in `tests/snapshots/staticcheck_golden.txt` — same
//! footprint signatures, same phase-representative metrics, same
//! (empty) finding lists.  A fitted coefficient drifting, a footprint
//! degrading from affine to residual, or a new false positive all fail
//! here before they reach the `staticcheck` gate.
//!
//! **Updating the snapshot** (after an *intentional* analyzer or kernel
//! change):
//!
//! ```text
//! STATICCHECK_GOLDEN_UPDATE=1 cargo test --test staticcheck_golden
//! ```
//!
//! then review the diff of `tests/snapshots/staticcheck_golden.txt` —
//! every changed line is a statement the analyzer proves about a
//! shipped kernel.

use gpu_sim::StaticCheckConfig;
use milc_bench::{paper, Experiment};
use milc_complex::DoubleComplex;
use milc_dslash::{run_config_staticcheck, DslashProblem, KernelConfig};
use std::path::PathBuf;

const L: usize = 8;
const SEED: u64 = 2024;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
        .join("staticcheck_golden.txt")
}

/// Analyze the twelve Table I configurations (proof set, no full
/// traffic enumeration — the `staticcheck` bin owns that) and render
/// the concatenated reports.
fn rendered_reports() -> String {
    let exp = Experiment::new(L, SEED);
    let problem = DslashProblem::<DoubleComplex>::random(L, exp.seed);
    let mut out = String::new();
    for col in paper::TABLE1.iter() {
        let cfg = KernelConfig::new(col.strategy, col.order);
        let ls = paper::table1_local_size(col.strategy);
        let report = run_config_staticcheck(
            &problem,
            cfg,
            ls,
            &exp.device,
            &StaticCheckConfig::default(),
        )
        .expect("table 1 configuration must be analyzable");
        out.push_str(&report.render_text());
        out.push('\n');
    }
    out
}

#[test]
fn table1_static_verdicts_match_the_golden_snapshot() {
    let rendered = rendered_reports();
    let path = snapshot_path();

    if std::env::var_os("STATICCHECK_GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("staticcheck_golden: snapshot updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             STATICCHECK_GOLDEN_UPDATE=1 cargo test --test staticcheck_golden",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "static verdicts drifted from the golden snapshot ({}); if the \
         analyzer/kernel change is intentional, regenerate with \
         STATICCHECK_GOLDEN_UPDATE=1 cargo test --test staticcheck_golden \
         and review the diff",
        path.display()
    );
}

#[test]
fn every_pinned_verdict_is_clean_and_fully_probed() {
    let rendered = rendered_reports();
    assert_eq!(
        rendered.matches("verdict: CLEAN").count(),
        paper::TABLE1.len(),
        "all twelve Table I configurations must be statically clean:\n{rendered}"
    );
    assert!(
        !rendered.contains("finding ["),
        "no findings may appear in the pinned reports:\n{rendered}"
    );
}
