//! The differential harness for the sharded Dslash: for every Table I
//! kernel configuration, the domain-decomposed run — any rank count,
//! either exchange schedule — must produce output *bitwise identical*
//! to the single-device run on the same fields.  Not "close": the
//! kernels see the same values at re-indexed addresses and the
//! simulator executes lanes in a fixed order, so any divergence at all
//! is a packing or halo bug.
//!
//! The default tests run at L = 8 (every rank slab is all-boundary
//! there, which is exactly the hard case for the ghost plumbing); the
//! `#[ignore]` tests repeat the sweep at L = 16 (where interior and
//! boundary phases genuinely split at N = 2) and L = 32 (the paper's
//! full scale): `cargo test --release --test shard_diff -- --ignored`.

use gpu_sim::{DeviceGroup, DeviceSpec, Interconnect, QueueMode};
use milc_bench::paper;
use milc_complex::DoubleComplex as Z;
use milc_dslash::shard::{run_sharded, ShardMode, ShardedProblem};
use milc_dslash::validate::bitwise_equal;
use milc_dslash::{run_config, DslashProblem, KernelConfig};
use milc_lattice::{ColorVector, GaugeField, Lattice, Parity, QuarkField};

const SEED: u64 = 2024;

fn fields(l: usize) -> (GaugeField<Z>, QuarkField<Z>) {
    let lat = Lattice::hypercubic(l);
    (
        GaugeField::random(&lat, SEED),
        QuarkField::random(&lat, SEED + 17),
    )
}

/// The single-device output of one configuration on explicit fields.
fn single_device(
    gauge: &GaugeField<Z>,
    b: &QuarkField<Z>,
    cfg: KernelConfig,
    ls: u32,
) -> Vec<ColorVector<Z>> {
    let mut p = DslashProblem::from_fields(gauge.clone(), b.clone(), Parity::Even);
    let out = run_config(
        &mut p,
        cfg,
        ls,
        &DeviceSpec::test_small(),
        QueueMode::InOrder,
    )
    .unwrap_or_else(|e| panic!("{} single-device: {e}", cfg.label()));
    assert!(out.error.within_reassociation_noise(), "{:?}", out.error);
    p.read_output()
}

/// Sweep all twelve Table I configurations at every rank count in
/// `rank_counts` under `mode`, asserting bitwise identity against the
/// single-device run.
fn sweep(l: usize, rank_counts: &[usize], mode: ShardMode) {
    let (gauge, b) = fields(l);
    for col in paper::TABLE1.iter() {
        let cfg = KernelConfig::new(col.strategy, col.order);
        let ls = paper::table1_local_size(col.strategy);
        let expected = single_device(&gauge, &b, cfg, ls);
        for &n in rank_counts {
            let mut sharded =
                ShardedProblem::from_fields(gauge.clone(), b.clone(), Parity::Even, n);
            let group =
                DeviceGroup::homogeneous(DeviceSpec::test_small(), n, Interconnect::nvlink());
            let outcome = run_sharded(&mut sharded, cfg, &group, mode, ls)
                .unwrap_or_else(|e| panic!("{} x{n} ({}): {e}", cfg.label(), mode.name()));
            assert!(
                outcome.error.within_reassociation_noise(),
                "{} x{n}: {:?}",
                cfg.label(),
                outcome.error
            );
            let got = sharded.read_assembled();
            assert!(
                bitwise_equal(&got, &expected),
                "{} x{n} ({}) diverges from the single-device run at L = {l}",
                cfg.label(),
                mode.name()
            );
        }
    }
}

#[test]
fn all_configs_bitwise_identical_in_order_l8() {
    sweep(8, &[2, 4, 8], ShardMode::InOrder);
}

#[test]
fn all_configs_bitwise_identical_overlapped_l8() {
    sweep(8, &[2, 4, 8], ShardMode::Overlapped);
}

#[test]
fn uneven_slabs_are_bitwise_identical_too() {
    // 3 and 5 do not divide Lt = 8, so the first slabs carry an extra
    // t-plane — the index arithmetic the even sweeps never exercise.
    let (gauge, b) = fields(8);
    let cfg = KernelConfig::new(
        milc_dslash::Strategy::ThreeLp1,
        milc_dslash::IndexOrder::KMajor,
    );
    let expected = single_device(&gauge, &b, cfg, 768);
    for n in [3usize, 5, 7] {
        for mode in [ShardMode::InOrder, ShardMode::Overlapped] {
            let mut sharded =
                ShardedProblem::from_fields(gauge.clone(), b.clone(), Parity::Even, n);
            let group =
                DeviceGroup::homogeneous(DeviceSpec::test_small(), n, Interconnect::nvlink());
            run_sharded(&mut sharded, cfg, &group, mode, 768)
                .unwrap_or_else(|e| panic!("x{n} ({}): {e}", mode.name()));
            assert!(
                bitwise_equal(&sharded.read_assembled(), &expected),
                "x{n} ({}) diverges",
                mode.name()
            );
        }
    }
}

#[test]
#[ignore = "L = 16 full sweep; run with --ignored (interior/boundary split is real at N = 2)"]
fn all_configs_bitwise_identical_l16() {
    sweep(16, &[2, 4, 8], ShardMode::InOrder);
    sweep(16, &[2, 4, 8], ShardMode::Overlapped);
}

#[test]
#[ignore = "L = 32 paper-scale sweep; slow, run with --ignored --release"]
fn all_configs_bitwise_identical_l32() {
    sweep(32, &[2, 4, 8], ShardMode::InOrder);
    sweep(32, &[2, 4, 8], ShardMode::Overlapped);
}
