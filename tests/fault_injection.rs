//! Failure-injection tests: every resource-exhaustion and misuse path
//! must surface as a typed error (or a loud panic where the simulated
//! hardware would corrupt state), never as silent wrong answers.

use gpu_sim::{
    DeviceMemory, DeviceSpec, Kernel, KernelResources, Lane, Launcher, NdRange, SimError,
};
use milc_complex::DoubleComplex;
use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, Strategy};

struct Hog {
    regs: u32,
    shared: u32,
}

impl Kernel for Hog {
    fn name(&self) -> &str {
        "hog"
    }
    fn resources(&self, _ls: u32) -> KernelResources {
        KernelResources {
            registers_per_item: self.regs,
            local_mem_bytes_per_group: self.shared,
        }
    }
    fn run_phase(&self, _p: usize, _lane: &mut Lane<'_>) {}
}

#[test]
fn register_file_exhaustion_is_typed() {
    let device = DeviceSpec::a100();
    let mem = DeviceMemory::new();
    let k = Hog {
        regs: 255,
        shared: 0,
    };
    let err = Launcher::new(&device).launch(&k, NdRange::linear(2048, 1024), &mem);
    assert!(
        matches!(err, Err(SimError::RegistersExhausted { .. })),
        "{err:?}"
    );
}

#[test]
fn local_memory_exhaustion_is_typed() {
    let device = DeviceSpec::a100();
    let mem = DeviceMemory::new();
    let k = Hog {
        regs: 16,
        shared: 200 * 1024,
    };
    let err = Launcher::new(&device).launch(&k, NdRange::linear(256, 128), &mem);
    assert!(
        matches!(err, Err(SimError::LocalMemTooLarge { .. })),
        "{err:?}"
    );
}

#[test]
fn indivisible_and_oversized_ranges_are_typed() {
    let device = DeviceSpec::a100();
    let mem = DeviceMemory::new();
    let k = Hog {
        regs: 16,
        shared: 0,
    };
    assert!(matches!(
        Launcher::new(&device).launch(&k, NdRange::linear(1000, 768), &mem),
        Err(SimError::IndivisibleGlobalSize { .. })
    ));
    assert!(matches!(
        Launcher::new(&device).launch(&k, NdRange::linear(4096, 2048), &mem),
        Err(SimError::InvalidLocalSize { .. })
    ));
}

struct WildLoad;

impl Kernel for WildLoad {
    fn name(&self) -> &str {
        "wild"
    }
    fn resources(&self, _ls: u32) -> KernelResources {
        KernelResources {
            registers_per_item: 8,
            local_mem_bytes_per_group: 0,
        }
    }
    fn run_phase(&self, _p: usize, lane: &mut Lane<'_>) {
        // Device address far outside every allocation.
        let _ = lane.ld_global_f64(0x4000_0000);
    }
}

#[test]
#[should_panic]
fn out_of_bounds_device_access_faults_loudly() {
    let device = DeviceSpec::test_small();
    let mut mem = DeviceMemory::new();
    let _small = mem.alloc(64, "tiny");
    let _ = Launcher::new(&device).launch(&WildLoad, NdRange::linear(32, 32), &mem);
}

#[test]
fn misaligned_local_size_rejected_before_memory_is_touched() {
    // The paper's constraint, enforced by the runner: a divisible but
    // block-misaligned size must not reach execution (it would read
    // across the work-group's local-memory boundary).
    let device = DeviceSpec::test_small();
    let mut p = DslashProblem::<DoubleComplex>::random(4, 90);
    let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
    // 32 divides 128*12 = 1536 but is not a multiple of 12.
    let err = run_config(&mut p, cfg, 32, &device, gpu_sim::QueueMode::InOrder);
    assert!(
        matches!(err, Err(SimError::InvalidLocalSize { .. })),
        "{err:?}"
    );
    // The output buffer is untouched (still zero).
    assert!(p.read_output().iter().all(|v| v.norm_sqr() == 0.0));
}

// ---------------------------------------------------------------------
// Halo-exchange faults (the sharded Dslash): a lost or truncated
// message must surface as a typed, *recoverable* error before any
// kernel runs; a silently corrupted exchange must be caught by the
// differential check — never by luck.

mod halo {
    use gpu_sim::{DeviceGroup, DeviceSpec, Interconnect, QueueMode, SimError};
    use milc_complex::DoubleComplex as Z;
    use milc_dslash::shard::{run_sharded, run_sharded_with, HaloFault, ShardMode, ShardedProblem};
    use milc_dslash::validate::bitwise_equal;
    use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, Strategy};
    use milc_lattice::{ColorVector, GaugeField, Lattice, Parity, QuarkField};

    const LS: u32 = 96;

    fn cfg() -> KernelConfig {
        KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor)
    }

    fn setup() -> (ShardedProblem<Z>, DeviceGroup, Vec<ColorVector<Z>>) {
        let lat = Lattice::hypercubic(4);
        let gauge = GaugeField::<Z>::random(&lat, 70);
        let b = QuarkField::<Z>::random(&lat, 71);
        let mut single = DslashProblem::from_fields(gauge.clone(), b.clone(), Parity::Even);
        run_config(
            &mut single,
            cfg(),
            LS,
            &DeviceSpec::test_small(),
            QueueMode::InOrder,
        )
        .expect("single-device run");
        let expected = single.read_output();
        let sharded = ShardedProblem::from_fields(gauge, b, Parity::Even, 2);
        let group = DeviceGroup::homogeneous(DeviceSpec::test_small(), 2, Interconnect::nvlink());
        (sharded, group, expected)
    }

    #[test]
    fn dropped_halo_message_is_typed_and_recoverable() {
        let (mut sharded, group, expected) = setup();
        let err = run_sharded_with(
            &mut sharded,
            cfg(),
            &group,
            ShardMode::Overlapped,
            &[LS, LS],
            HaloFault::Drop { msg: 0 },
        );
        match err {
            Err(SimError::HaloMessageFault {
                expected_bytes,
                got_bytes,
                ..
            }) => {
                assert!(expected_bytes > 0);
                assert_eq!(got_bytes, 0, "a dropped message delivers nothing");
            }
            other => panic!("expected HaloMessageFault, got {other:?}"),
        }
        // Recoverable: the same problem re-runs cleanly and still
        // produces the bitwise-identical answer.
        let out = run_sharded(&mut sharded, cfg(), &group, ShardMode::Overlapped, LS)
            .expect("retry after a dropped message succeeds");
        assert!(out.error.within_reassociation_noise(), "{:?}", out.error);
        assert!(bitwise_equal(&sharded.read_assembled(), &expected));
    }

    #[test]
    fn truncated_halo_message_reports_both_byte_counts() {
        let (mut sharded, group, _) = setup();
        let err = run_sharded_with(
            &mut sharded,
            cfg(),
            &group,
            ShardMode::InOrder,
            &[LS, LS],
            HaloFault::Truncate {
                msg: 1,
                keep_bytes: 100,
            },
        );
        match err {
            Err(SimError::HaloMessageFault {
                expected_bytes,
                got_bytes,
                ..
            }) => {
                // 100 bytes keeps six whole complex values (96 bytes).
                assert_eq!(got_bytes, 96);
                assert!(expected_bytes > got_bytes);
            }
            other => panic!("expected HaloMessageFault, got {other:?}"),
        }
    }

    #[test]
    fn silent_corruption_is_caught_by_the_differential_check() {
        let (mut sharded, group, expected) = setup();
        let out = run_sharded_with(
            &mut sharded,
            cfg(),
            &group,
            ShardMode::InOrder,
            &[LS, LS],
            HaloFault::SilentDrop { msg: 0 },
        )
        .expect("a silent drop does not error — that is the point");
        // The run completes, but the answer is wrong, and both layers
        // of the differential harness see it: the reference comparison
        // and the bitwise check against the single-device output.
        assert!(
            !out.error.within_reassociation_noise(),
            "zeroed ghosts must corrupt boundary sites: {:?}",
            out.error
        );
        assert!(!bitwise_equal(&sharded.read_assembled(), &expected));
    }
}

#[test]
fn wrong_device_state_is_rejected() {
    use gpu_sim::DeviceState;
    let a100 = DeviceSpec::a100();
    let small = DeviceSpec::test_small();
    let mut mem = DeviceMemory::new();
    let b = mem.alloc(1024 * 8, "b");
    struct Touch(u64);
    impl Kernel for Touch {
        fn name(&self) -> &str {
            "touch"
        }
        fn resources(&self, _ls: u32) -> KernelResources {
            KernelResources {
                registers_per_item: 8,
                local_mem_bytes_per_group: 0,
            }
        }
        fn run_phase(&self, _p: usize, lane: &mut Lane<'_>) {
            let i = lane.global_id();
            lane.st_global_f64(self.0 + i * 8, 1.0);
        }
    }
    let mut state = DeviceState::new(&a100);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Launcher::new(&small).launch_with_state(
            &Touch(b.base()),
            NdRange::linear(1024, 64),
            &mem,
            &mut state,
        )
    }));
    assert!(result.is_err(), "mismatched device state must be rejected");
}
