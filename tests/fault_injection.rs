//! Failure-injection tests: every resource-exhaustion and misuse path
//! must surface as a typed error (or a loud panic where the simulated
//! hardware would corrupt state), never as silent wrong answers.

use gpu_sim::{
    DeviceMemory, DeviceSpec, Kernel, KernelResources, Lane, Launcher, NdRange, SimError,
};
use milc_complex::DoubleComplex;
use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, Strategy};

struct Hog {
    regs: u32,
    shared: u32,
}

impl Kernel for Hog {
    fn name(&self) -> &str {
        "hog"
    }
    fn resources(&self, _ls: u32) -> KernelResources {
        KernelResources {
            registers_per_item: self.regs,
            local_mem_bytes_per_group: self.shared,
        }
    }
    fn run_phase(&self, _p: usize, _lane: &mut Lane<'_>) {}
}

#[test]
fn register_file_exhaustion_is_typed() {
    let device = DeviceSpec::a100();
    let mem = DeviceMemory::new();
    let k = Hog {
        regs: 255,
        shared: 0,
    };
    let err = Launcher::new(&device).launch(&k, NdRange::linear(2048, 1024), &mem);
    assert!(
        matches!(err, Err(SimError::RegistersExhausted { .. })),
        "{err:?}"
    );
}

#[test]
fn local_memory_exhaustion_is_typed() {
    let device = DeviceSpec::a100();
    let mem = DeviceMemory::new();
    let k = Hog {
        regs: 16,
        shared: 200 * 1024,
    };
    let err = Launcher::new(&device).launch(&k, NdRange::linear(256, 128), &mem);
    assert!(
        matches!(err, Err(SimError::LocalMemTooLarge { .. })),
        "{err:?}"
    );
}

#[test]
fn indivisible_and_oversized_ranges_are_typed() {
    let device = DeviceSpec::a100();
    let mem = DeviceMemory::new();
    let k = Hog {
        regs: 16,
        shared: 0,
    };
    assert!(matches!(
        Launcher::new(&device).launch(&k, NdRange::linear(1000, 768), &mem),
        Err(SimError::IndivisibleGlobalSize { .. })
    ));
    assert!(matches!(
        Launcher::new(&device).launch(&k, NdRange::linear(4096, 2048), &mem),
        Err(SimError::InvalidLocalSize { .. })
    ));
}

struct WildLoad;

impl Kernel for WildLoad {
    fn name(&self) -> &str {
        "wild"
    }
    fn resources(&self, _ls: u32) -> KernelResources {
        KernelResources {
            registers_per_item: 8,
            local_mem_bytes_per_group: 0,
        }
    }
    fn run_phase(&self, _p: usize, lane: &mut Lane<'_>) {
        // Device address far outside every allocation.
        let _ = lane.ld_global_f64(0x4000_0000);
    }
}

#[test]
#[should_panic]
fn out_of_bounds_device_access_faults_loudly() {
    let device = DeviceSpec::test_small();
    let mut mem = DeviceMemory::new();
    let _small = mem.alloc(64, "tiny");
    let _ = Launcher::new(&device).launch(&WildLoad, NdRange::linear(32, 32), &mem);
}

#[test]
fn misaligned_local_size_rejected_before_memory_is_touched() {
    // The paper's constraint, enforced by the runner: a divisible but
    // block-misaligned size must not reach execution (it would read
    // across the work-group's local-memory boundary).
    let device = DeviceSpec::test_small();
    let mut p = DslashProblem::<DoubleComplex>::random(4, 90);
    let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
    // 32 divides 128*12 = 1536 but is not a multiple of 12.
    let err = run_config(&mut p, cfg, 32, &device, gpu_sim::QueueMode::InOrder);
    assert!(
        matches!(err, Err(SimError::InvalidLocalSize { .. })),
        "{err:?}"
    );
    // The output buffer is untouched (still zero).
    assert!(p.read_output().iter().all(|v| v.norm_sqr() == 0.0));
}

#[test]
fn wrong_device_state_is_rejected() {
    use gpu_sim::DeviceState;
    let a100 = DeviceSpec::a100();
    let small = DeviceSpec::test_small();
    let mut mem = DeviceMemory::new();
    let b = mem.alloc(1024 * 8, "b");
    struct Touch(u64);
    impl Kernel for Touch {
        fn name(&self) -> &str {
            "touch"
        }
        fn resources(&self, _ls: u32) -> KernelResources {
            KernelResources {
                registers_per_item: 8,
                local_mem_bytes_per_group: 0,
            }
        }
        fn run_phase(&self, _p: usize, lane: &mut Lane<'_>) {
            let i = lane.global_id();
            lane.st_global_f64(self.0 + i * 8, 1.0);
        }
    }
    let mut state = DeviceState::new(&a100);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Launcher::new(&small).launch_with_state(
            &Touch(b.base()),
            NdRange::linear(1024, 64),
            &mem,
            &mut state,
        )
    }));
    assert!(result.is_err(), "mismatched device state must be rejected");
}
