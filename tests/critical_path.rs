//! Critical-path analysis of real sharded runs: for every rank count
//! and both exchange schedules, the dependency-DAG critical path must
//! equal the modelled wall clock *exactly* (the DAG is built from the
//! same per-rank timelines the runner summed), the overlapped schedule
//! must hide strictly more halo time than in-order, and the exported
//! Perfetto timeline must round-trip — through `parse_chrome` and
//! through the trace-side DAG reconstruction — without losing any of
//! it.
//!
//! Runs at L = 8, where every slab is all-boundary (interior empty):
//! the degenerate case for the DAG builder, since the overlapped graph
//! collapses to halo → boundary with no interior node to hide behind —
//! overlap efficiency must still be positive (pipelining alone saves
//! per-message latency) and strictly above the in-order zero.

use gpu_sim::{DeviceGroup, DeviceSpec, Interconnect};
use milc_complex::DoubleComplex as Z;
use milc_dslash::obs::prof::CriticalPath;
use milc_dslash::shard::{modelled_trace, run_sharded, ShardMode, ShardedProblem};
use milc_dslash::{obs, IndexOrder, KernelConfig, Strategy};

const SEED: u64 = 2024;
const RANKS: [usize; 3] = [2, 4, 8];

fn outcome(n: usize, mode: ShardMode) -> milc_dslash::shard::ShardOutcome {
    let mut sharded = ShardedProblem::<Z>::random(8, SEED, n);
    let group = DeviceGroup::homogeneous(DeviceSpec::test_small(), n, Interconnect::nvlink());
    let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
    run_sharded(&mut sharded, cfg, &group, mode, 256).expect("sharded run")
}

#[test]
fn critical_path_length_equals_wall_on_every_config() {
    for n in RANKS {
        for mode in [ShardMode::InOrder, ShardMode::Overlapped] {
            let out = outcome(n, mode);
            let cp = CriticalPath::from_outcome(&out);
            cp.check(0.01)
                .unwrap_or_else(|e| panic!("N={n} {mode:?}: {e}"));
            assert_eq!(
                cp.length_us, out.wall_us,
                "N={n} {mode:?}: path length must equal the wall clock exactly"
            );
            assert!(
                !cp.path.is_empty() && cp.steps.iter().any(|s| s.critical),
                "N={n} {mode:?}: no critical steps marked"
            );
        }
    }
}

#[test]
fn overlapped_schedule_hides_strictly_more_halo_time() {
    for n in RANKS {
        let ino = CriticalPath::from_outcome(&outcome(n, ShardMode::InOrder));
        let ovl = CriticalPath::from_outcome(&outcome(n, ShardMode::Overlapped));
        assert_eq!(
            ino.overlap_efficiency, 0.0,
            "N={n}: a blocking exchange hides nothing"
        );
        assert!(
            ovl.overlap_efficiency > 0.0,
            "N={n}: overlapped efficiency {} must be positive",
            ovl.overlap_efficiency
        );
    }
}

#[test]
fn sharded_timeline_round_trips_and_rebuilds_the_same_dag() {
    for mode in [ShardMode::InOrder, ShardMode::Overlapped] {
        let out = outcome(4, mode);
        let trace = modelled_trace(&out);

        // Chrome-JSON round trip of the sharded timeline is lossless.
        let text = obs::write_chrome(&trace);
        let parsed = obs::parse_chrome(&text).expect("emitted trace must re-parse");
        assert_eq!(parsed.spans.len(), trace.spans.len(), "{mode:?}");
        for (a, b) in parsed.spans.iter().zip(trace.spans.iter()) {
            assert_eq!(a.name, b.name, "{mode:?}");
            assert_eq!(a.track, b.track, "{mode:?}");
        }

        // The trace alone carries enough structure to rebuild the DAG.
        let from_trace = CriticalPath::from_trace(&trace).expect("sharded trace must reconstruct");
        let from_outcome = CriticalPath::from_outcome(&out);
        assert!(
            (from_trace.length_us - from_outcome.length_us).abs() < 1e-9,
            "{mode:?}: {} vs {}",
            from_trace.length_us,
            from_outcome.length_us
        );
        assert!(
            (from_trace.overlap_efficiency - from_outcome.overlap_efficiency).abs() < 1e-12,
            "{mode:?}"
        );
        assert_eq!(from_trace.steps.len(), from_outcome.steps.len(), "{mode:?}");
    }
}
