//! Golden regression test for the autotuner: the tuner's selections
//! for the paper's twelve Table I configurations — winning local size
//! AND modelled duration — must match the checked-in snapshot
//! `tests/snapshots/tune_golden.csv` exactly.
//!
//! This pins the performance model end to end: a change anywhere in
//! the timing model, the cache simulation, the occupancy calculator or
//! the kernels that shifts a tuned winner (or even its duration) fails
//! here instead of silently rewriting EXPERIMENTS.md numbers.
//!
//! **Updating the snapshot** (after an *intentional* model change):
//!
//! ```text
//! TUNE_GOLDEN_UPDATE=1 cargo test --test tune_golden
//! ```
//!
//! then review the diff of `tests/snapshots/tune_golden.csv` like any
//! other code change — every moved duration is a claim about modelled
//! performance — and re-run the L = 16 gate
//! (`cargo run -p milc-bench --bin tune --release`) to confirm the
//! Fig. 6 cross-check still holds.

use gpu_sim::QueueMode;
use milc_bench::{paper, Experiment};
use milc_complex::DoubleComplex;
use milc_dslash::tune::Tuner;
use milc_dslash::{DslashProblem, KernelConfig};
use std::path::PathBuf;

/// Same lattice, seed and (volume-matched) device as the CI smoke run
/// `cargo run -p milc-bench --bin tune -- 4`, so this snapshot and the
/// bin's report can be compared eyeball-to-eyeball.
const L: usize = 4;
const SEED: u64 = 2024;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
        .join("tune_golden.csv")
}

/// Tune all twelve Table I configurations; one CSV line per config.
/// Durations are printed to 3 decimals — far coarser than f64 but fine
/// enough that any real model change moves them.  The winning
/// shared-memory layout is pinned too: a layout flip is as much a
/// perf-model claim as a moved duration.
fn tuned_rows() -> Vec<String> {
    let exp = Experiment::new(L, SEED);
    let mut problem = DslashProblem::<DoubleComplex>::random(L, exp.seed);
    let mut tuner = Tuner::in_memory();
    paper::TABLE1
        .iter()
        .map(|col| {
            let cfg = KernelConfig::new(col.strategy, col.order);
            let d = tuner
                .tune(&mut problem, cfg, &exp.device, QueueMode::OutOfOrder)
                .unwrap_or_else(|e| panic!("{} failed to tune: {e}", cfg.label()));
            format!(
                "{},{},{},{:.3}",
                cfg.label(),
                d.entry.local_size,
                d.entry.layout,
                d.entry.duration_us
            )
        })
        .collect()
}

#[test]
fn tuner_selections_match_the_golden_snapshot() {
    let rows = tuned_rows();
    let rendered = format!(
        "kernel,local_size,layout,duration_us\n{}\n",
        rows.join("\n")
    );
    let path = snapshot_path();

    if std::env::var_os("TUNE_GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("tune_golden: snapshot updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             TUNE_GOLDEN_UPDATE=1 cargo test --test tune_golden",
            path.display()
        )
    });
    let golden_rows: Vec<&str> = golden.lines().skip(1).filter(|l| !l.is_empty()).collect();
    assert_eq!(
        golden_rows.len(),
        rows.len(),
        "snapshot has {} rows, tuner produced {} — regenerate with \
         TUNE_GOLDEN_UPDATE=1 if the Table I configuration set changed",
        golden_rows.len(),
        rows.len()
    );
    let mut drifted = Vec::new();
    for (got, want) in rows.iter().zip(&golden_rows) {
        if got != want {
            drifted.push(format!("  got  `{got}`\n  want `{want}`"));
        }
    }
    assert!(
        drifted.is_empty(),
        "tuner selections drifted from the golden snapshot \
         ({}); if the perf-model change is intentional, regenerate with \
         TUNE_GOLDEN_UPDATE=1 cargo test --test tune_golden and review the diff:\n{}",
        path.display(),
        drifted.join("\n")
    );
}

#[test]
fn golden_run_is_deterministic() {
    // The whole premise of a golden snapshot: same inputs, same rows.
    assert_eq!(tuned_rows(), tuned_rows());
}
