//! Golden regression test for **measurement-free tuning**: the
//! [`SweepMode::Static`] winner — local size, shared-memory layout and
//! warm-calibrated predicted duration — plus its measured regret
//! against the exhaustive sweep must match the checked-in snapshot
//! `tests/snapshots/static_tune_golden.csv` exactly.
//!
//! Where `tune_golden.csv` pins what the *measuring* tuner selects,
//! this snapshot pins what the *static* tuner would select with zero
//! launches, and by how much that selection trails the measured
//! optimum.  A change to the cost model, the regime calibration table
//! or the static rank order that flips a winner or moves a regret
//! fails here instead of silently degrading the measurement-free mode.
//!
//! **Updating the snapshot** (after an *intentional* model change):
//!
//! ```text
//! STATIC_TUNE_GOLDEN_UPDATE=1 cargo test --test static_tune_golden
//! ```
//!
//! then review the diff like any other code change — and re-run the
//! L = 8 gate (`cargo test --release --test static_tune_diff`) to
//! confirm the 5% regret bound still holds.

use gpu_sim::QueueMode;
use milc_bench::{paper, Experiment};
use milc_complex::DoubleComplex;
use milc_dslash::tune::{sweep_layouts_with_mode, SweepMode};
use milc_dslash::{DslashProblem, KernelConfig};
use std::path::PathBuf;

/// Same lattice, seed and volume-matched device as `tune_golden`, so
/// the static and measured snapshots compare line by line.
const L: usize = 4;
const SEED: u64 = 2024;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
        .join("static_tune_golden.csv")
}

/// Static-sweep all twelve Table I configurations; one CSV line per
/// config: the launch-free winner, its warm-calibrated predicted
/// duration, the exhaustive sweep's measured duration of that same
/// point, and the regret against the measured winner (percent, 2
/// decimals — coarse enough to absorb float noise, fine enough that a
/// real ranking change moves it).
fn static_rows() -> Vec<String> {
    let exp = Experiment::new(L, SEED);
    let mut problem = DslashProblem::<DoubleComplex>::random(L, exp.seed);
    paper::TABLE1
        .iter()
        .map(|col| {
            let cfg = KernelConfig::new(col.strategy, col.order);
            let label = cfg.label();
            let stat = sweep_layouts_with_mode(
                &mut problem,
                cfg,
                &exp.device,
                QueueMode::OutOfOrder,
                SweepMode::Static,
            )
            .unwrap_or_else(|e| panic!("{label}: static sweep failed: {e}"));
            assert_eq!(stat.sweep_launches, 0, "{label}: static sweep launched");
            let full = sweep_layouts_with_mode(
                &mut problem,
                cfg,
                &exp.device,
                QueueMode::OutOfOrder,
                SweepMode::Exhaustive,
            )
            .unwrap_or_else(|e| panic!("{label}: exhaustive sweep failed: {e}"));
            let measured = full
                .timed()
                .find(|p| p.local_size == stat.winner.local_size && p.layout == stat.winner.layout)
                .unwrap_or_else(|| {
                    panic!(
                        "{label}: static winner {} @ {} not timed exhaustively",
                        stat.winner.layout.tag(),
                        stat.winner.local_size
                    )
                });
            let regret = (measured.duration_us - full.winner.duration_us) / full.winner.duration_us;
            format!(
                "{label},{},{},{:.3},{:.3},{:.2}",
                stat.winner.local_size,
                stat.winner.layout.tag(),
                stat.winner.duration_us,
                measured.duration_us,
                regret * 100.0,
            )
        })
        .collect()
}

const HEADER: &str = "kernel,local_size,layout,predicted_us,measured_us,regret_pct";

#[test]
fn static_selections_match_the_golden_snapshot() {
    let rows = static_rows();
    let rendered = format!("{HEADER}\n{}\n", rows.join("\n"));
    let path = snapshot_path();

    if std::env::var_os("STATIC_TUNE_GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("static_tune_golden: snapshot updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             STATIC_TUNE_GOLDEN_UPDATE=1 cargo test --test static_tune_golden",
            path.display()
        )
    });
    let golden_rows: Vec<&str> = golden.lines().skip(1).filter(|l| !l.is_empty()).collect();
    assert_eq!(
        golden_rows.len(),
        rows.len(),
        "snapshot has {} rows, static tuner produced {} — regenerate with \
         STATIC_TUNE_GOLDEN_UPDATE=1 if the Table I configuration set changed",
        golden_rows.len(),
        rows.len()
    );
    let mut drifted = Vec::new();
    for (got, want) in rows.iter().zip(&golden_rows) {
        if got != want {
            drifted.push(format!("  got  `{got}`\n  want `{want}`"));
        }
    }
    assert!(
        drifted.is_empty(),
        "static tuner selections drifted from the golden snapshot \
         ({}); if the model change is intentional, regenerate with \
         STATIC_TUNE_GOLDEN_UPDATE=1 cargo test --test static_tune_golden \
         and review the diff:\n{}",
        path.display(),
        drifted.join("\n")
    );
}

#[test]
fn golden_run_is_deterministic() {
    // Same premise as `tune_golden`: same inputs, same rows — the
    // static ranking must not depend on iteration order or any hidden
    // state carried between sweeps.
    assert_eq!(static_rows(), static_rows());
}
