//! Golden shape test for the tracing subsystem: a small-lattice Table I
//! run under an ambient tracer must produce exactly the span tree
//! pinned in `tests/snapshots/trace_golden.txt` — same tracks, same
//! span names, same nesting, same order.  Durations and counter values
//! are deliberately NOT pinned (they move with every perf-model change;
//! `tests/tune_golden.rs` and the `perfdiff` gate own those) — this
//! test owns the *instrumentation*: a dropped span, a renamed track or
//! a lost nesting level fails here.
//!
//! **Updating the snapshot** (after an *intentional* instrumentation
//! change):
//!
//! ```text
//! TRACE_GOLDEN_UPDATE=1 cargo test --test trace_golden
//! ```
//!
//! then review the diff of `tests/snapshots/trace_golden.txt` — every
//! added/removed line is a span appearing in/disappearing from every
//! timeline users load into Perfetto.

use milc_bench::{table1_outcomes, Experiment};
use milc_complex::DoubleComplex;
use milc_dslash::obs;
use milc_dslash::DslashProblem;
use std::path::PathBuf;

const L: usize = 8;
const SEED: u64 = 2024;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
        .join("trace_golden.txt")
}

/// Run the twelve Table I configurations under a tracer, as
/// `table1 --trace` does, and return the recorded trace.
fn traced_table1() -> obs::Trace {
    let exp = Experiment::new(L, SEED);
    let mut problem = DslashProblem::<DoubleComplex>::random(L, exp.seed);
    let tracer = obs::Tracer::new();
    {
        let _scope = obs::set_tracer(&tracer);
        let root = obs::span_on("table1", "table1.run");
        root.attr("lattice_l", L as u64);
        let _ = table1_outcomes(&exp, &mut problem);
        drop(root);
    }
    assert_eq!(tracer.open_spans(), 0, "every opened span must close");
    tracer.snapshot()
}

#[test]
fn table1_trace_shape_matches_the_golden_snapshot() {
    let trace = traced_table1();
    let rendered = trace.shape();
    let path = snapshot_path();

    if std::env::var_os("TRACE_GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("trace_golden: snapshot updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             TRACE_GOLDEN_UPDATE=1 cargo test --test trace_golden",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "trace shape drifted from the golden snapshot ({}); if the \
         instrumentation change is intentional, regenerate with \
         TRACE_GOLDEN_UPDATE=1 cargo test --test trace_golden and review \
         the diff",
        path.display()
    );
}

#[test]
fn table1_trace_has_one_track_per_config_plus_counters() {
    let trace = traced_table1();
    // "table1" (the root) + one track per distinct Table I config label.
    assert_eq!(trace.tracks().len(), 13, "tracks: {:?}", trace.tracks());
    // The counter tracks record_launch emits for every launch.
    for want in ["SM throughput %", "L1 miss %", "L2 miss %"] {
        assert!(
            trace.counter_tracks().contains(&want),
            "missing counter track {want:?}: {:?}",
            trace.counter_tracks()
        );
    }
    // Every launch span carries the Table I counter attributes.
    let launch_spans: Vec<_> = trace.spans.iter().filter(|s| s.name == "launch").collect();
    assert_eq!(launch_spans.len(), 12, "one timed launch per config");
    for s in &launch_spans {
        for key in [
            "config",
            "duration_us",
            "host_wall_us",
            "occupancy_pct",
            "l1_miss_pct",
            "l2_miss_pct",
            "sm_throughput_pct",
            "l1_tag_requests_global",
            "atomic_passes",
        ] {
            assert!(s.attr(key).is_some(), "launch span lacks attr {key:?}");
        }
    }
}

#[test]
fn chrome_export_round_trips_the_table1_trace() {
    let trace = traced_table1();
    let text = obs::write_chrome(&trace);
    let parsed = obs::parse_chrome(&text).expect("emitted JSON must re-parse");
    assert_eq!(parsed.spans, trace.spans);
    assert_eq!(parsed.counters, trace.counters);
}

/// Tracing must be pay-for-what-you-use: with no ambient tracer the
/// instrumented paths record nothing and change nothing — identical
/// device launches (counters and modelled duration are deterministic)
/// and identical allocations.
#[test]
fn disabled_tracing_adds_zero_launches_and_zero_allocations() {
    let run = |traced: bool| {
        let exp = Experiment::new(L, SEED);
        let mut problem = DslashProblem::<DoubleComplex>::random(L, exp.seed);
        let tracer = obs::Tracer::new();
        let outcomes = if traced {
            let _scope = obs::set_tracer(&tracer);
            table1_outcomes(&exp, &mut problem)
        } else {
            table1_outcomes(&exp, &mut problem)
        };
        let allocs = problem.memory().allocations().count();
        let reports: Vec<_> = outcomes
            .into_iter()
            .map(|(label, out)| (label, out.report.counters, out.report.duration_us))
            .collect();
        (reports, allocs, tracer)
    };

    let (untraced, allocs_untraced, silent_tracer) = run(false);
    let (traced, allocs_traced, _) = run(true);

    // No ambient tracer => nothing recorded, no metrics side channel.
    assert_eq!(silent_tracer.closed_spans(), 0);
    assert_eq!(silent_tracer.open_spans(), 0);

    // The device work is bit-identical either way: same launch count,
    // same architectural counters, same modelled time, same allocations.
    assert_eq!(untraced.len(), traced.len());
    for ((l0, c0, d0), (l1, c1, d1)) in untraced.iter().zip(&traced) {
        assert_eq!(l0, l1);
        assert_eq!(c0, c1, "{l0}: counters must not change under tracing");
        assert_eq!(d0, d1, "{l0}: modelled duration must not change");
    }
    assert_eq!(allocs_untraced, allocs_traced);
}
