//! Property-based tests of the *device* Dslash (not just the CPU
//! reference): linearity of the operator, seed-independence of the
//! architectural counters, and layout/index-space invariants, driven by
//! proptest over small lattices.  Plus the tune-cache invariants: the
//! JSON roundtrip, key-mismatch-always-misses, corruption degrading to
//! a full sweep instead of a panic, and `padded_range` divisibility.

use gpu_sim::{DeviceSpec, QueueMode};
use milc_complex::{ComplexField, DoubleComplex};
use milc_dslash::tune::{TuneCache, TuneEntry, TuneKey, TuneRegime};
use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, Strategy};
use milc_lattice::{ColorVector, GaugeField, Lattice, Parity, QuarkField};
use proptest::collection;
use proptest::prelude::*;
use quda_ref::padded_range;

type Z = DoubleComplex;

fn device() -> DeviceSpec {
    DeviceSpec::test_small()
}

/// Run a strategy on explicit fields; return the device output.
fn device_dslash(
    gauge: &GaugeField<Z>,
    b: &QuarkField<Z>,
    strategy: Strategy,
    order: IndexOrder,
    ls: u32,
) -> Vec<ColorVector<Z>> {
    let mut p = DslashProblem::from_fields(gauge.clone(), b.clone(), Parity::Even);
    let cfg = KernelConfig::new(strategy, order);
    let out = run_config(&mut p, cfg, ls, &device(), QueueMode::InOrder).unwrap();
    assert!(out.error.within_reassociation_noise(), "{:?}", out.error);
    p.read_output()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The device operator is linear in B: D(a·B1 + B2) = a·D(B1) + D(B2)
    /// to reassociation accuracy — checked through the full device path
    /// (packing, kernels, local-memory reductions).
    #[test]
    fn device_dslash_is_linear(seed in 0u64..500, a_re in -2.0f64..2.0) {
        let lat = Lattice::hypercubic(2);
        let gauge = GaugeField::<Z>::random(&lat, seed);
        let b1 = QuarkField::<Z>::random(&lat, seed + 1000);
        let b2 = QuarkField::<Z>::random(&lat, seed + 2000);
        let mut combo = QuarkField::<Z>::zeros(&lat);
        for s in 0..lat.volume() {
            *combo.site_mut(s) = b1.site(s).scale(a_re) + *b2.site(s);
        }
        let d1 = device_dslash(&gauge, &b1, Strategy::ThreeLp1, IndexOrder::KMajor, 96);
        let d2 = device_dslash(&gauge, &b2, Strategy::ThreeLp1, IndexOrder::KMajor, 96);
        let dc = device_dslash(&gauge, &combo, Strategy::ThreeLp1, IndexOrder::KMajor, 96);
        for cb in 0..lat.half_volume() {
            for i in 0..3 {
                let expect = d1[cb].c[i].scale(a_re) + d2[cb].c[i];
                let got = dc[cb].c[i];
                prop_assert!(
                    (got - expect).norm_sqr().sqrt() < 1e-9,
                    "cb {cb} i {i}: {got:?} vs {expect:?}"
                );
            }
        }
    }

    /// Architectural counters depend only on the access pattern, never
    /// on the field *values*: two problems with different seeds produce
    /// identical counter sets for the same configuration.
    #[test]
    fn counters_are_value_independent(s1 in 0u64..1000, s2 in 1000u64..2000) {
        let cfg = KernelConfig::new(Strategy::ThreeLp2, IndexOrder::IMajor);
        let mut p1 = DslashProblem::<Z>::random(2, s1);
        let mut p2 = DslashProblem::<Z>::random(2, s2);
        let o1 = run_config(&mut p1, cfg, 32, &device(), QueueMode::InOrder).unwrap();
        let o2 = run_config(&mut p2, cfg, 32, &device(), QueueMode::InOrder).unwrap();
        prop_assert_eq!(o1.report.counters, o2.report.counters);
        prop_assert_eq!(o1.report.duration_us, o2.report.duration_us);
    }

    /// All strategies agree pairwise on the same random instance (the
    /// transitive closure of the per-strategy reference checks, done
    /// directly on device outputs).
    #[test]
    fn strategies_agree_pairwise(seed in 0u64..300) {
        let lat = Lattice::hypercubic(2);
        let gauge = GaugeField::<Z>::random(&lat, seed);
        let b = QuarkField::<Z>::random(&lat, seed + 7);
        let base = device_dslash(&gauge, &b, Strategy::OneLp, IndexOrder::KMajor, 8);
        for (s, o, ls) in [
            (Strategy::TwoLp, IndexOrder::KMajor, 24),
            (Strategy::ThreeLp3, IndexOrder::KMajor, 96),
            (Strategy::FourLp1, IndexOrder::IMajor, 96),
            (Strategy::FourLp2, IndexOrder::IMajor, 96),
        ] {
            let out = device_dslash(&gauge, &b, s, o, ls);
            for cb in 0..lat.half_volume() {
                for i in 0..3 {
                    prop_assert!(
                        (out[cb].c[i] - base[cb].c[i]).norm_sqr().sqrt() < 1e-9,
                        "{} vs 1LP at cb {cb}", s.name()
                    );
                }
            }
        }
    }

    /// Legal local sizes always launch; illegal ones always error.
    #[test]
    fn local_size_legality_is_sound(ls in 1u32..=1024) {
        let mut p = DslashProblem::<Z>::random(2, 5);
        let hv = p.lattice().half_volume() as u64;
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let legal = cfg.local_size_legal(ls, hv);
        let result = run_config(&mut p, cfg, ls, &device(), QueueMode::InOrder);
        if legal {
            prop_assert!(result.is_ok(), "legal {ls} failed: {result:?}");
        } else {
            // The runner enforces the paper's constraint up front: any
            // illegal size — indivisible *or* site-block-misaligned —
            // is rejected before launch (a misaligned size would make
            // the local-memory reduction read out of bounds).
            prop_assert!(result.is_err(), "illegal {ls} launched");
        }
    }
}

/// The kernel labels the tuner actually caches, indexed for proptest.
const KERNEL_LABELS: [&str; 4] = ["1LP", "3LP-1 k-major", "3LP-1 i-major", "4LP-2 l-major"];

/// Deterministically build a cache entry from generated scalars.
fn make_entry(
    device_hash: u64,
    dim: usize,
    kernel_idx: usize,
    sanitized: bool,
    local_size: u32,
    duration_us: f64,
) -> TuneEntry {
    TuneEntry {
        key: TuneKey {
            device_hash,
            dims: [dim, dim, dim, dim],
            kernel: KERNEL_LABELS[kernel_idx % KERNEL_LABELS.len()].to_string(),
            sanitized,
            // Alternate regimes so the roundtrip exercises both tags.
            regime: if kernel_idx.is_multiple_of(2) {
                TuneRegime::Warm
            } else {
                TuneRegime::Cold
            },
        },
        local_size,
        // Cycle through every tag family so the JSON roundtrip and the
        // strict layout validation both see all of them.
        layout: ["flat", "pad5", "xor2", "xor1"][kernel_idx % 4].to_string(),
        duration_us,
        gflops: 1e6 / duration_us,
        candidates_ok: 4,
        candidates_rejected: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serialize → parse is the identity on the tune cache, for any
    /// generated population of entries.
    #[test]
    fn tune_cache_roundtrips(
        hash in 0u64..u64::MAX,
        dims in collection::vec(2usize..64, 1..4),
        sanitized_bits in 0u8..4,
        ls in 1u32..=1024,
        us in 0.001f64..1e7,
    ) {
        let mut cache = TuneCache::new();
        for (i, &dim) in dims.iter().enumerate() {
            cache.insert(make_entry(
                hash.wrapping_add(i as u64),
                dim,
                i,
                (sanitized_bits >> (i % 2)) & 1 == 1,
                ls,
                us + i as f64,
            ));
        }
        let back = TuneCache::from_json(&cache.to_json());
        prop_assert!(back.is_ok(), "{back:?}");
        prop_assert_eq!(back.unwrap(), cache);
    }

    /// Any single-field difference in the key misses: device hash,
    /// lattice dims, kernel label, sanitizer flag all participate.
    #[test]
    fn tune_key_mismatch_always_misses(
        hash in 0u64..u64::MAX,
        dim in 2usize..64,
        kernel_idx in 0usize..4,
        ls in 1u32..=1024,
        field in 0u8..4,
    ) {
        let entry = make_entry(hash, dim, kernel_idx, false, ls, 10.0);
        let mut cache = TuneCache::new();
        cache.insert(entry.clone());
        prop_assert!(cache.lookup(&entry.key).is_some());
        let mut probe = entry.key.clone();
        match field {
            0 => probe.device_hash ^= 1,
            1 => probe.dims[dim % 4] += 1,
            2 => probe.kernel = KERNEL_LABELS[(kernel_idx + 1) % KERNEL_LABELS.len()].to_string(),
            _ => probe.sanitized = !probe.sanitized,
        }
        prop_assert!(cache.lookup(&probe).is_none(), "{probe:?} unexpectedly hit");
    }

    /// A corrupted cache *file* of arbitrary bytes never panics: load
    /// degrades to an empty cache (→ the tuner re-sweeps).
    #[test]
    fn corrupted_cache_bytes_degrade_to_empty(
        bytes in collection::vec(0u8..=255, 0..512),
        tag in 0u64..u64::MAX,
    ) {
        let dir = std::env::temp_dir().join("milc-tunecache-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("fuzz-{}-{tag:016x}.json", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let (cache, _outcome) = TuneCache::load(&path);
        // Arbitrary bytes virtually never form a valid versioned cache;
        // the property that matters is: no panic, and a non-document
        // yields an empty cache rather than garbage entries.
        if TuneCache::from_json(&String::from_utf8_lossy(&bytes)).is_err() {
            prop_assert!(cache.is_empty());
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Truncating a *valid* cache document anywhere never panics, and
    /// either parses to some cache or errors cleanly.
    #[test]
    fn truncated_cache_json_never_panics(cut_permille in 0usize..1000) {
        let mut cache = TuneCache::new();
        cache.insert(make_entry(0xABCD, 16, 1, false, 96, 875.1));
        cache.insert(make_entry(0xABCD, 16, 2, true, 64, 950.7));
        let text = cache.to_json();
        let cut = text.len() * cut_permille / 1000;
        // Cut at a char boundary (the document is ASCII, but be safe).
        let mut cut = cut.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = TuneCache::from_json(&text[..cut]); // must not panic
    }

    /// QUDA-style padded grids: the padded global size is always a
    /// whole multiple of the local size, never smaller than the
    /// requested global size, and overshoots by less than one group.
    #[test]
    fn padded_range_is_whole_groups(global in 1u64..1_000_000_000, ls in 1u32..=1024) {
        let r = padded_range(global, ls);
        prop_assert_eq!(r.local, ls);
        prop_assert_eq!(r.global % ls as u64, 0);
        prop_assert!(r.global >= global);
        prop_assert!(r.global - global < ls as u64);
        prop_assert_eq!(r.num_groups(), global.div_ceil(ls as u64));
    }
}

// ---------------------------------------------------------------------
// Sharding invariants (the domain decomposition of `shard::Partition`):
// the t-slab partition is a disjoint cover of the lattice for *any*
// extents and rank count, halo send/receive sets are symmetric, and the
// ghost-region size matches the analytic two-faces formula wherever the
// slices cannot overlap.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every lattice site belongs to exactly one rank's slab, local and
    /// global indices are inverse bijections, and `owner_of_site` agrees
    /// with the slab iteration — for arbitrary (even) extents and any
    /// rank count up to the t extent, including uneven splits.
    #[test]
    fn shard_partition_is_a_disjoint_cover(
        half_ls in 1usize..3,
        half_lt in 1usize..9,
        ranks_seed in 1usize..32,
    ) {
        use milc_dslash::shard::Partition;
        let (ls, lt) = (2 * half_ls, 2 * half_lt);
        let lat = Lattice::new([ls, ls, ls, lt]);
        let ranks = 1 + ranks_seed % lt; // any count in 1..=Lt
        let p = Partition::new(&lat, ranks);
        let mut owned = vec![0u32; lat.volume()];
        for r in 0..ranks {
            prop_assert_eq!(p.slab_volume(r), p.t_len(r) * p.slice_volume());
            for s in p.slab_sites(r) {
                owned[s] += 1;
                prop_assert_eq!(p.owner_of_site(s), r);
                prop_assert_eq!(p.global_site(r, p.local_index(r, s)), s);
            }
        }
        prop_assert!(
            owned.iter().all(|&c| c == 1),
            "cover is not disjoint/exhaustive: {ranks} ranks on {:?}",
            lat.dims()
        );
        // The remainder is spread one extra plane at a time.
        let lens: Vec<usize> = (0..ranks).map(|r| p.t_len(r)).collect();
        prop_assert_eq!(lens.iter().sum::<usize>(), lt);
        prop_assert!(lens.iter().all(|&l| l >= lt / ranks && l <= lt / ranks + 1));
    }

    /// Halo symmetry: the send set of rank r to rank r' is exactly what
    /// r' receives from r — every message's sites are owned by its
    /// sender, the incoming messages of a rank partition its ghost set
    /// (each ghost delivered exactly once), and the ghost set equals the
    /// stencil-derived need set.
    #[test]
    fn shard_halo_send_and_receive_sets_are_symmetric(
        half_ls in 1usize..3,
        half_lt in 1usize..9,
        ranks_seed in 1usize..32,
    ) {
        use milc_dslash::shard::{Partition, BYTES_PER_HALO_SITE};
        use milc_lattice::neighbors::NeighborTable;
        use std::collections::BTreeSet;

        let (ls, lt) = (2 * half_ls, 2 * half_lt);
        let lat = Lattice::new([ls, ls, ls, lt]);
        let ranks = 1 + ranks_seed % lt;
        let p = Partition::new(&lat, ranks);
        let nt = NeighborTable::build(&lat);
        for m in p.messages() {
            prop_assert!(m.from != m.to, "no self-messages");
            prop_assert_eq!(m.bytes(), m.sites.len() as u64 * BYTES_PER_HALO_SITE);
            for &s in &m.sites {
                prop_assert_eq!(p.owner_of_site(s), m.from, "sender must own what it sends");
            }
        }
        for r in 0..ranks {
            let mut received = BTreeSet::new();
            for m in p.incoming(r) {
                for &s in &m.sites {
                    prop_assert!(received.insert(s), "site {s} delivered to rank {r} twice");
                }
            }
            let ghosts: BTreeSet<usize> = p.ghost_sites(r).iter().copied().collect();
            prop_assert_eq!(&received, &ghosts, "messages must fill rank {r}'s ghosts exactly");
            prop_assert_eq!(&ghosts, &p.needed_sources(r, &nt), "rank {r} need set");
        }
    }

    /// The ghost region is the analytic `2 · HALO_DEPTH · Lx·Ly·Lz`
    /// (two faces, three planes deep) whenever the slab is at least two
    /// planes thick and the rest of the lattice at least six — the
    /// regime where the below/above slices can neither wrap onto each
    /// other nor back onto the slab.  Never larger, in any regime.
    #[test]
    fn shard_ghost_sizes_match_the_analytic_formula(
        half_ls in 1usize..3,
        half_lt in 1usize..9,
        ranks_seed in 1usize..32,
    ) {
        use milc_dslash::shard::{Partition, HALO_DEPTH};
        let (ls, lt) = (2 * half_ls, 2 * half_lt);
        let lat = Lattice::new([ls, ls, ls, lt]);
        let ranks = 1 + ranks_seed % lt;
        let p = Partition::new(&lat, ranks);
        for r in 0..ranks {
            prop_assert_eq!(p.analytic_ghost_sites(r), 2 * HALO_DEPTH * ls * ls * ls);
            prop_assert!(p.num_ghosts(r) <= p.analytic_ghost_sites(r));
            if p.t_len(r) >= 2 && lt - p.t_len(r) >= 2 * HALO_DEPTH {
                prop_assert_eq!(
                    p.num_ghosts(r),
                    p.analytic_ghost_sites(r),
                    "rank {r} of {ranks} on {:?}",
                    lat.dims()
                );
            }
        }
    }
}

#[test]
fn phased_gauge_still_validates_on_device() {
    // Folding the staggered eta phases into the links (production MILC)
    // must leave every strategy's device result consistent with the CPU
    // reference on the phased field.
    let lat = Lattice::hypercubic(4);
    let gauge = milc_lattice::fold_phases(&GaugeField::<Z>::random(&lat, 60));
    let b = QuarkField::<Z>::random(&lat, 61);
    let mut p = DslashProblem::from_fields(gauge, b, Parity::Even);
    for (s, o, ls) in [
        (Strategy::ThreeLp1, IndexOrder::KMajor, 96),
        (Strategy::FourLp2, IndexOrder::LMajor, 96),
    ] {
        let out = run_config(
            &mut p,
            KernelConfig::new(s, o),
            ls,
            &device(),
            QueueMode::InOrder,
        )
        .unwrap();
        assert!(
            out.error.within_reassociation_noise(),
            "{}: {:?}",
            s.name(),
            out.error
        );
    }
}

// ---------------------------------------------------------------------
// Tracing invariants: random span trees driven through the obs::Tracer
// must always close, keep monotone timestamps, nest children inside
// their parents, and survive the Chrome-JSON round trip bit-exactly.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn span_trees_close_nest_and_round_trip(
        ops in collection::vec((0u8..3, 0usize..4), 1..60)
    ) {
        use milc_dslash::obs::{parse_chrome, write_chrome, Tracer};

        let tracer = Tracer::new();
        let tracks = ["gpu", "cg", "tune", "io"];
        let mut stack = Vec::new();
        for (i, &(op, t)) in ops.iter().enumerate() {
            match op {
                // Open a span (bounded depth so trees stay readable).
                0 if stack.len() < 8 => {
                    let g = tracer.span_on(tracks[t], &format!("s{i}"));
                    g.attr("i", i as u64);
                    stack.push(g);
                }
                // Close the innermost open span.
                1 => { stack.pop(); }
                // A counter sample between spans.
                _ => tracer.counter(tracks[t], i as f64),
            }
        }
        // Close the remaining spans innermost-first (LIFO), the
        // scope-guard discipline every instrumented call site follows.
        while let Some(g) = stack.pop() {
            drop(g);
        }

        // Every opened span closed.
        prop_assert_eq!(tracer.open_spans(), 0);
        let trace = tracer.snapshot();

        // Timestamps are monotone and self-consistent.
        for s in &trace.spans {
            prop_assert!(s.dur_us >= 0.0);
            prop_assert!(s.end_us() >= s.start_us);
        }
        let mut by_seq = trace.spans.clone();
        by_seq.sort_by_key(|s| s.seq);
        for w in by_seq.windows(2) {
            prop_assert!(
                w[1].start_us >= w[0].start_us,
                "open order must be non-decreasing in time"
            );
        }
        for w in trace.counters.windows(2) {
            prop_assert!(w[1].ts_us >= w[0].ts_us);
        }

        // Every nested span lies inside some span one level up.
        for s in trace.spans.iter().filter(|s| s.depth > 0) {
            let contained = trace.spans.iter().any(|p| {
                p.depth + 1 == s.depth
                    && p.seq < s.seq
                    && p.start_us <= s.start_us
                    && s.end_us() <= p.end_us()
            });
            prop_assert!(contained, "span {} (depth {}) has no parent", s.name, s.depth);
        }

        // Chrome export/import is lossless.
        let parsed = parse_chrome(&write_chrome(&trace)).expect("round trip");
        prop_assert_eq!(parsed.spans, trace.spans);
        prop_assert_eq!(parsed.counters, trace.counters);
    }
}

// ---------------------------------------------------------------------
// Static-analysis invariants: the fitted footprint model must
// reproduce the dynamic event streams of the lanes it probed, the
// static race verdict must agree with the dynamic racecheck on clean
// *and* broken kernels, and the static traffic prediction must equal
// the dynamic architectural counters exactly.

/// Strategies that are legal on a 2^4 lattice (half-volume 8), each
/// with a legal local size.
const STATIC_CONFIGS: [(Strategy, IndexOrder, u32); 5] = [
    (Strategy::TwoLp, IndexOrder::KMajor, 24),
    (Strategy::ThreeLp1, IndexOrder::KMajor, 96),
    (Strategy::ThreeLp2, IndexOrder::IMajor, 96),
    (Strategy::ThreeLp3, IndexOrder::KMajor, 96),
    (Strategy::FourLp2, IndexOrder::IMajor, 96),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For every `(group, block, residue)` point the analyzer probed,
    /// re-running the lane dynamically must produce *exactly* the event
    /// stream the fitted model predicts — the affine/gather forms
    /// round-trip the observations they were fitted from, address by
    /// address.
    #[test]
    fn static_footprints_reproduce_probed_lane_streams(
        seed in 0u64..200,
        idx in 0usize..STATIC_CONFIGS.len(),
    ) {
        use gpu_sim::sharedmem::LocalMem;
        use gpu_sim::staticcheck::PhaseModel;
        use gpu_sim::{build_launch_model, Lane};

        let (s, o, ls) = STATIC_CONFIGS[idx];
        let p = DslashProblem::<Z>::random(2, seed);
        let cfg = KernelConfig::new(s, o);
        let range = p.launch_range(cfg, ls);
        let kernel = p.make_kernel(cfg, range.num_groups());
        let dev = DeviceSpec::a100();
        let model = build_launch_model(kernel.as_ref(), &range, &dev, p.memory());
        let res = kernel.resources(range.local);
        let mut local_mem = LocalMem::new(res.local_mem_bytes_per_group);
        for (phase, pm) in model.phases.iter().enumerate() {
            prop_assert!(
                matches!(pm, PhaseModel::Uniform(_)),
                "{} phase {phase} unexpectedly irregular", s.name()
            );
            for &grp in &model.probed_groups {
                for &blk in &model.probed_blocks {
                    for q in 0..model.q_len {
                        let lid = blk as u32 * model.q_len + q;
                        let gid = grp * range.local as u64 + u64::from(lid);
                        let mut events = Vec::new();
                        let mut u32s = Vec::new();
                        {
                            let mut lane = Lane::new_probe(
                                gid, lid, grp, range.local, p.memory(),
                                &mut local_mem, &mut events, &mut u32s,
                            );
                            kernel.run_phase(phase, &mut lane);
                        }
                        let predicted = model
                            .predicted_stream(p.memory(), phase, grp, lid)
                            .expect("uniform phase predicts every lane");
                        prop_assert_eq!(
                            &predicted, &events,
                            "{} phase {} lane (g{}, lid {})", s.name(), phase, grp, lid
                        );
                    }
                }
            }
        }
    }
}

/// The static race verdict and the dynamic racecheck agree in both
/// directions: every shipped configuration is race-free under both,
/// and both convict the two deliberately racy kernels.
#[test]
fn static_and_dynamic_race_verdicts_agree() {
    use gpu_sim::{Kernel, Launcher, NdRange, SanitizerConfig, StaticCheckConfig};
    use milc_dslash::{
        run_config_sanitized, run_config_staticcheck, BrokenBarrierThreeLp1, PlainStoreThreeLp3,
    };

    let dev = DeviceSpec::a100();
    for (s, o, ls) in STATIC_CONFIGS {
        let mut p = DslashProblem::<Z>::random(2, 11);
        let cfg = KernelConfig::new(s, o);
        let srep = run_config_staticcheck(&p, cfg, ls, &dev, &StaticCheckConfig::tuner()).unwrap();
        assert_eq!(
            srep.count_class("race"),
            0,
            "{}: static race findings: {:?}",
            s.name(),
            srep.findings
        );
        let drep = run_config_sanitized(&mut p, cfg, ls, &dev, SanitizerConfig::default()).unwrap();
        assert_eq!(
            drep.sanitizer.as_ref().unwrap().count_class("race"),
            0,
            "{}: dynamic race findings",
            s.name()
        );
    }

    let p = DslashProblem::<Z>::random(2, 12);
    let hv = p.lattice().half_volume() as u64;
    let t = p.tables();
    let racy: [(Box<dyn Kernel>, NdRange); 2] = [
        (
            Box::new(BrokenBarrierThreeLp1::new(t)),
            NdRange::linear(hv * 12, 96),
        ),
        (
            Box::new(PlainStoreThreeLp3::new(t)),
            NdRange::linear(hv * 12, 96),
        ),
    ];
    for (kernel, range) in racy {
        let srep = gpu_sim::staticcheck_analyze(
            kernel.as_ref(),
            &range,
            &dev,
            p.memory(),
            &StaticCheckConfig::default(),
        );
        assert!(
            srep.count_class("race") >= 1,
            "{}: race not proven statically: {:?}",
            kernel.name(),
            srep.findings
        );
        let lrep = Launcher::new(&dev)
            .with_sanitizer(SanitizerConfig::default())
            .launch(kernel.as_ref(), range, p.memory())
            .unwrap();
        assert!(
            lrep.sanitizer.as_ref().unwrap().count_class("race") >= 1,
            "{}: race not caught dynamically",
            kernel.name()
        );
    }
}

// ---------------------------------------------------------------------
// Cost-model invariants: the occupancy calculator must be monotone in
// kernel resources, the static ranking must be a stable total order
// (even with duplicate candidates), and top-K pruning must never drop
// the predicted-best candidate — for arbitrary resources and durations.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Occupancy is anti-monotone in resource appetite: asking for more
    /// registers or more shared memory never *raises* residency or
    /// theoretical occupancy, and achieved never exceeds theoretical.
    #[test]
    fn occupancy_is_monotone_in_resources(
        ls_warps in 1u32..=32,
        regs in 16u32..=128,
        lmem in 0u32..64 * 1024,
        extra_regs in 0u32..=64,
        extra_lmem in 0u32..32 * 1024,
        groups in 1u64..10_000,
    ) {
        use gpu_sim::occupancy::occupancy;
        use gpu_sim::KernelResources;

        let dev = DeviceSpec::a100();
        let ls = ls_warps * dev.warp_size;
        let lean = KernelResources {
            registers_per_item: regs,
            local_mem_bytes_per_group: lmem,
        };
        let hungry = KernelResources {
            registers_per_item: regs + extra_regs,
            local_mem_bytes_per_group: lmem + extra_lmem,
        };
        let a = occupancy(&dev, ls, &lean, groups);
        let b = occupancy(&dev, ls, &hungry, groups);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert!(b.groups_per_sm <= a.groups_per_sm);
                prop_assert!(b.warps_per_sm <= a.warps_per_sm);
                prop_assert!(b.theoretical <= a.theoretical + 1e-12);
                prop_assert!(b.waves >= a.waves - 1e-12);
                for o in [a, b] {
                    prop_assert!(o.theoretical > 0.0 && o.theoretical <= 1.0);
                    prop_assert!(o.achieved <= o.theoretical + 1e-12);
                    prop_assert!(o.waves > 0.0);
                }
            }
            // If the lean kernel already exhausts an SM resource, the
            // hungrier one must too — infeasibility is monotone.
            (Err(_), b) => prop_assert!(b.is_err(), "hungrier kernel became feasible"),
            (Ok(_), Err(_)) => {}
        }
    }
}

/// Build a synthetic estimate whose only distinguishing features are a
/// local size and a predicted duration — exactly what the ranking keys
/// on.
fn synthetic_estimate(local_size: u32, duration_us: f64) -> gpu_sim::CostEstimate {
    use gpu_sim::occupancy::occupancy;
    use gpu_sim::{CostEstimate, Counters, KernelResources};
    let dev = DeviceSpec::a100();
    let occ = occupancy(
        &dev,
        64,
        &KernelResources {
            registers_per_item: 32,
            local_mem_bytes_per_group: 0,
        },
        64,
    )
    .unwrap();
    CostEstimate {
        local_size,
        num_groups: 64,
        occupancy: occ,
        counters: Counters::default(),
        cold_counters: Counters::default(),
        footprint_bytes: 0,
        duration_us,
        cold_duration_us: duration_us,
        notes: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `rank_estimates` is a stable total order: sorted by duration with
    /// ties broken toward the smaller local size, invariant under input
    /// permutation, and idempotent — duplicate candidates (same size,
    /// same duration) land adjacent instead of scrambling the order.
    #[test]
    fn ranking_is_a_stable_total_order_under_duplicates(
        base in collection::vec((32u32..=1024, 1.0f64..1e4), 1..12),
        dup_idx in 0usize..12,
    ) {
        use gpu_sim::rank_estimates;

        let mut cands = base.clone();
        // Inject an exact duplicate of one candidate.
        cands.push(base[dup_idx % base.len()]);
        let ests = cands.iter().map(|&(ls, us)| synthetic_estimate(ls, us));
        let ranked = rank_estimates(ests.collect());
        prop_assert_eq!(ranked.len(), cands.len());
        for w in ranked.windows(2) {
            prop_assert!(
                w[0].duration_us < w[1].duration_us
                    || (w[0].duration_us == w[1].duration_us
                        && w[0].local_size <= w[1].local_size),
                "not a total order: ({}, {}) before ({}, {})",
                w[0].local_size, w[0].duration_us, w[1].local_size, w[1].duration_us
            );
        }
        // Permutation invariance (reversed input, same output keys).
        let rev = rank_estimates(
            cands.iter().rev().map(|&(ls, us)| synthetic_estimate(ls, us)).collect(),
        );
        let keys = |v: &[gpu_sim::CostEstimate]| -> Vec<(u32, f64)> {
            v.iter().map(|e| (e.local_size, e.duration_us)).collect()
        };
        prop_assert_eq!(keys(&ranked), keys(&rev));
        // Idempotence.
        prop_assert_eq!(keys(&rank_estimates(ranked.clone())), keys(&ranked));
    }

    /// Top-K pruning is sound by construction: for any candidate set and
    /// any K ≥ 1, the timed head of the ranking contains the
    /// predicted-best candidate (minimum duration, smallest local size
    /// on ties) — pruning only ever drops the predicted tail.
    #[test]
    fn top_k_pruning_never_drops_the_predicted_best(
        cands in collection::vec((32u32..=1024, 1.0f64..1e4), 1..16),
        k in 1usize..16,
    ) {
        use gpu_sim::rank_estimates;

        let ranked = rank_estimates(
            cands.iter().map(|&(ls, us)| synthetic_estimate(ls, us)).collect(),
        );
        let best_us = cands.iter().map(|&(_, us)| us).fold(f64::INFINITY, f64::min);
        let best_ls = cands
            .iter()
            .filter(|&&(_, us)| us == best_us)
            .map(|&(ls, _)| ls)
            .min()
            .unwrap();
        let timed = &ranked[..k.min(ranked.len())];
        prop_assert!(
            timed.iter().any(|e| e.local_size == best_ls && e.duration_us == best_us),
            "top-{k} dropped the predicted best ({best_ls} @ {best_us})"
        );
    }
}

// ---------------------------------------------------------------------
// Local-memory layout invariants: every tunable-family layout is a
// bijection onto disjoint 16-byte element blocks (no aliasing for any
// parameter), the bank model is invariant under warp-uniform word
// shifts (the translation lemma the static bank-conflict proof rests
// on), and the symbolic proof's wavefront totals equal the executed
// launch's counters exactly for every layout.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any layout in the tunable families maps a work-group's element
    /// range monotonically with ≥ 16-byte gaps — distinct elements
    /// occupy disjoint blocks, so no two work-items' local slots alias,
    /// whatever the stride/xor parameters.
    #[test]
    fn shared_layouts_never_alias(
        stride in 4u32..9,
        xor_bits in 0u32..5,
        elems in 1u32..=1024,
    ) {
        use milc_dslash::SharedLayout;
        for layout in [
            SharedLayout::Flat,
            SharedLayout::Padded { stride_elems: stride },
            SharedLayout::Swizzled { xor_bits },
        ] {
            let mut prev_end = 0u32;
            for e in 0..elems {
                let off = layout.offset(e);
                prop_assert_eq!(off % 4, 0, "{} element {e} not word-aligned", layout.tag());
                prop_assert!(
                    off >= prev_end,
                    "{} element {e} at {off} overlaps previous end {prev_end}",
                    layout.tag()
                );
                prev_end = off + 16;
            }
            prop_assert_eq!(layout.required_bytes(elems), prev_end);
        }
    }

    /// The dynamic bank model is invariant under a warp-uniform word
    /// shift: adding the same word delta to every lane rotates banks,
    /// permuting collisions without changing the wavefront or ideal
    /// counts.  This is the translation lemma that lets the static
    /// bank-conflict proof evaluate each access pattern once and
    /// multiply by its occurrence count across the ND-range.
    #[test]
    fn bank_model_is_invariant_under_uniform_word_shifts(
        words in collection::vec(0u32..256, 1..33),
        shift_words in 0u32..512,
        bytes_sel in 0usize..3,
    ) {
        use gpu_sim::sharedmem::model_shared_instruction;
        let bytes = [4u8, 8, 16][bytes_sel];
        let base: Vec<(u32, u8)> = words.iter().map(|&w| (w * 4, bytes)).collect();
        let shifted: Vec<(u32, u8)> =
            words.iter().map(|&w| ((w + shift_words) * 4, bytes)).collect();
        let a = model_shared_instruction(&base, 32, 4);
        let b = model_shared_instruction(&shifted, 32, 4);
        prop_assert_eq!(a, b, "shift by {shift_words} words changed the model");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The static bank-conflict proof computes the *exact* shared-memory
    /// wavefront totals of the launch — actual and ideal — through
    /// every layout, including the XOR swizzle, with no dynamic
    /// fallback: randomized field seeds never perturb it (the proof is
    /// value-blind), and the executed launch's counters match word for
    /// word.
    #[test]
    fn static_bank_proof_matches_dynamic_wavefronts(
        seed in 0u64..100,
        layout_idx in 0usize..3,
        cfg_idx in 0usize..3,
    ) {
        use gpu_sim::StaticCheckConfig;
        use milc_dslash::{run_config_staticcheck, SharedLayout};

        let (s, o, ls) = [
            (Strategy::ThreeLp1, IndexOrder::KMajor, 96),
            (Strategy::ThreeLp2, IndexOrder::IMajor, 96),
            (Strategy::FourLp2, IndexOrder::IMajor, 96),
        ][cfg_idx];
        let layout = SharedLayout::TUNABLE[layout_idx];
        let mut p = DslashProblem::<Z>::random(2, seed);
        let cfg = KernelConfig::new(s, o).with_layout(layout);
        let dev = DeviceSpec::a100();
        let srep = run_config_staticcheck(&p, cfg, ls, &dev, &StaticCheckConfig::full()).unwrap();
        let proof = srep.bank_proof.unwrap_or_else(|| {
            panic!("{} {}: no bank proof: {:?}", s.name(), layout.tag(), srep.notes)
        });
        let out = run_config(&mut p, cfg, ls, &dev, QueueMode::InOrder).unwrap();
        prop_assert_eq!(
            proof.shared_wavefronts, out.report.counters.shared_wavefronts,
            "{} {}: proved wavefronts diverge", s.name(), layout.tag()
        );
        prop_assert_eq!(
            proof.shared_wavefronts_ideal, out.report.counters.shared_wavefronts_ideal,
            "{} {}: proved ideal diverges", s.name(), layout.tag()
        );
        prop_assert_eq!(proof.local_instructions, out.report.counters.local_instructions);
    }
}

/// The whole-launch traffic prediction is not a model of the dynamic
/// replay — it *is* the dynamic replay, reached without executing the
/// kernel: all predicted counters must equal the executed launch's
/// exactly.
#[test]
fn static_traffic_prediction_matches_dynamic_counters_exactly() {
    use gpu_sim::{StaticCheckConfig, TrafficPrediction};
    use milc_dslash::run_config_staticcheck;

    let dev = DeviceSpec::a100();
    for (s, o, ls) in STATIC_CONFIGS {
        if ls % dev.warp_size != 0 {
            continue; // sub-warp groups get no whole-launch prediction
        }
        let mut p = DslashProblem::<Z>::random(2, 13);
        let cfg = KernelConfig::new(s, o);
        let srep = run_config_staticcheck(&p, cfg, ls, &dev, &StaticCheckConfig::full()).unwrap();
        let predicted = srep
            .traffic
            .unwrap_or_else(|| panic!("{}: no prediction: {:?}", s.name(), srep.notes));
        let out = run_config(&mut p, cfg, ls, &dev, QueueMode::InOrder).unwrap();
        assert_eq!(
            predicted.rows(),
            TrafficPrediction::dynamic_rows(&out.report.counters),
            "{}: predicted traffic must equal the executed launch",
            s.name()
        );
    }
}

/// A synthetic estimate with distinct warm and cold durations — the
/// shape `estimate_stream` and the regime calibration consume.
fn regime_estimate(duration_us: f64, cold_us: f64) -> gpu_sim::CostEstimate {
    let mut e = synthetic_estimate(64, duration_us);
    e.cold_duration_us = cold_us;
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver-stream estimate is monotone in the application count
    /// (more applies, more time), empty at zero applies, and its launch
    /// accounting is exact: `kernels × applies` launches of which one
    /// per kernel is cold.
    #[test]
    fn stream_estimate_is_monotone_in_applications(
        warm1 in 1.0f64..500.0,
        warm2 in 1.0f64..500.0,
        cold_factor in 1.0f64..3.0,
        n1 in 1u64..300,
        dn in 1u64..300,
    ) {
        use gpu_sim::{estimate_stream, RegimeCalibration};
        let cal = RegimeCalibration::committed();
        let k1 = regime_estimate(warm1, warm1 * cold_factor);
        let k2 = regime_estimate(warm2, warm2 * cold_factor);
        let kernels = [&k1, &k2];

        let zero = estimate_stream(&kernels, 0, &cal);
        prop_assert_eq!(zero.launches, 0);
        prop_assert_eq!(zero.cold_launches, 0);
        prop_assert_eq!(zero.duration_us, 0.0);
        prop_assert_eq!(zero.calibrated_us, 0.0);

        let a = estimate_stream(&kernels, n1, &cal);
        let b = estimate_stream(&kernels, n1 + dn, &cal);
        prop_assert_eq!(a.launches, 2 * n1);
        prop_assert_eq!(a.cold_launches, 2);
        prop_assert_eq!(b.launches, 2 * (n1 + dn));
        prop_assert!(b.duration_us > a.duration_us,
            "{} applies: {} µs, {} applies: {} µs",
            n1, a.duration_us, n1 + dn, b.duration_us);
        prop_assert!(b.calibrated_us > a.calibrated_us);
        // The stream is exactly cold + (n-1)·warm per kernel.
        let expect = (warm1 * cold_factor + warm2 * cold_factor)
            + (n1 - 1) as f64 * (warm1 + warm2);
        prop_assert!((a.duration_us - expect).abs() < 1e-6 * expect.max(1.0));
    }

    /// Real estimates never price a cold launch below a warm one — the
    /// cold counter set only *adds* compulsory misses — and the
    /// amortized per-launch duration decays monotonically from the cold
    /// estimate toward the warm one as launches accumulate.
    #[test]
    fn cold_estimates_dominate_warm_on_real_kernels(
        seed in 0u64..100,
        cfg_idx in 0usize..3,
        n in 1u64..1000,
    ) {
        use milc_dslash::estimate_config;
        let (s, o, ls) = [
            (Strategy::ThreeLp1, IndexOrder::KMajor, 96),
            (Strategy::ThreeLp2, IndexOrder::IMajor, 96),
            (Strategy::FourLp2, IndexOrder::IMajor, 96),
        ][cfg_idx];
        let p = DslashProblem::<Z>::random(2, seed);
        let cfg = KernelConfig::new(s, o);
        let est = estimate_config(&p, cfg, ls, &DeviceSpec::a100())
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
        prop_assert!(est.cold_duration_us >= est.duration_us,
            "{}: cold {} µs below warm {} µs",
            cfg.label(), est.cold_duration_us, est.duration_us);
        prop_assert!(
            est.cold_counters.l2_sector_misses >= est.counters.l2_sector_misses,
            "{}: cold launch predicted fewer L2 misses", cfg.label()
        );
        // Amortization interpolates: warm ≤ amortized(n+1) ≤ amortized(n) ≤ cold.
        let a_n = est.amortized_duration_us(n);
        let a_n1 = est.amortized_duration_us(n + 1);
        prop_assert!(a_n <= est.cold_duration_us + 1e-12);
        prop_assert!(a_n1 <= a_n + 1e-12);
        prop_assert!(est.duration_us <= a_n1 + 1e-12);
    }

    /// `static_rank_order` is a total order: the ranking — winner
    /// included — is invariant under any permutation of the candidate
    /// list, so a measurement-free sweep cannot be steered by
    /// enumeration order.
    #[test]
    fn static_rank_order_is_permutation_invariant(
        cands in collection::vec((0usize..4, 0usize..5, 1.0f64..1000.0), 1..12),
    ) {
        use milc_dslash::tune::static_rank_order;
        use milc_dslash::SharedLayout;
        let layouts = [
            SharedLayout::Flat,
            SharedLayout::TUNABLE[0],
            SharedLayout::TUNABLE[1],
            SharedLayout::TUNABLE[2],
        ];
        const SIZES: [u32; 5] = [32, 64, 96, 128, 256];
        let build = |v: &[(usize, usize, f64)]| -> Vec<(SharedLayout, u32, f64)> {
            v.iter()
                .map(|&(li, si, us)| (layouts[li], SIZES[si], us))
                .collect()
        };
        let mut sorted = build(&cands);
        static_rank_order(&mut sorted);
        let mut reversed: Vec<_> = build(&cands).into_iter().rev().collect();
        static_rank_order(&mut reversed);
        for (a, b) in sorted.iter().zip(&reversed) {
            prop_assert_eq!(a.0.tag(), b.0.tag());
            prop_assert_eq!(a.1, b.1);
            prop_assert_eq!(a.2, b.2);
        }
    }
}

/// A v1 cache file (pre-regime schema) must be *rejected by version* —
/// never silently misread into regime-less keys — and the rejection is
/// recoverable: the tuner starts fresh and can save a v3 cache over it.
#[test]
fn v1_cache_file_is_rejected_then_recovered() {
    use milc_dslash::tune::{LoadOutcome, TUNECACHE_VERSION};
    let path =
        std::env::temp_dir().join(format!("static_tune_v1_cache_{}.json", std::process::id()));
    // A plausible v1 file: version 1, entries without a regime field.
    std::fs::write(
        &path,
        r#"{"version": 1, "entries": [{"key": {"device_hash": 1, "dims": [4,4,4,4],
            "kernel": "1LP", "sanitized": false}, "local_size": 32,
            "layout": "flat", "duration_us": 10.0, "gflops": 1.0,
            "candidates_ok": 4, "candidates_rejected": 0}]}"#,
    )
    .unwrap();

    let (cache, outcome) = TuneCache::load(&path);
    assert_eq!(outcome, LoadOutcome::VersionMismatch { found: 1 });
    assert_eq!(cache.len(), 0, "a stale-version cache must load empty");

    // Recovery: a fresh cache saves over the stale file at the current
    // version, and both regimes round-trip through it.
    let mut cache = cache;
    for (i, regime) in [TuneRegime::Warm, TuneRegime::Cold].into_iter().enumerate() {
        let mut e = make_entry(7, 4, 0, false, 32, 10.0 + i as f64);
        e.key.regime = regime;
        cache.insert(e);
    }
    assert_eq!(cache.len(), 2, "warm and cold are distinct keys");
    cache.save(&path).unwrap();
    let (back, outcome) = TuneCache::load(&path);
    assert_eq!(outcome, LoadOutcome::Loaded(2));
    for (i, regime) in [TuneRegime::Warm, TuneRegime::Cold].into_iter().enumerate() {
        let mut key = make_entry(7, 4, 0, false, 32, 1.0).key;
        key.regime = regime;
        let entry = back
            .lookup(&key)
            .unwrap_or_else(|| panic!("{regime:?} entry lost in the roundtrip"));
        assert_eq!(entry.duration_us, 10.0 + i as f64);
    }
    const { assert!(TUNECACHE_VERSION > 1) };
    std::fs::remove_file(&path).ok();
}
