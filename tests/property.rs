//! Property-based tests of the *device* Dslash (not just the CPU
//! reference): linearity of the operator, seed-independence of the
//! architectural counters, and layout/index-space invariants, driven by
//! proptest over small lattices.

use gpu_sim::{DeviceSpec, QueueMode};
use milc_complex::{ComplexField, DoubleComplex};
use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, Strategy};
use milc_lattice::{ColorVector, GaugeField, Lattice, Parity, QuarkField};
use proptest::prelude::*;

type Z = DoubleComplex;

fn device() -> DeviceSpec {
    DeviceSpec::test_small()
}

/// Run a strategy on explicit fields; return the device output.
fn device_dslash(
    gauge: &GaugeField<Z>,
    b: &QuarkField<Z>,
    strategy: Strategy,
    order: IndexOrder,
    ls: u32,
) -> Vec<ColorVector<Z>> {
    let mut p = DslashProblem::from_fields(gauge.clone(), b.clone(), Parity::Even);
    let cfg = KernelConfig::new(strategy, order);
    let out = run_config(&mut p, cfg, ls, &device(), QueueMode::InOrder).unwrap();
    assert!(out.error.within_reassociation_noise(), "{:?}", out.error);
    p.read_output()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The device operator is linear in B: D(a·B1 + B2) = a·D(B1) + D(B2)
    /// to reassociation accuracy — checked through the full device path
    /// (packing, kernels, local-memory reductions).
    #[test]
    fn device_dslash_is_linear(seed in 0u64..500, a_re in -2.0f64..2.0) {
        let lat = Lattice::hypercubic(2);
        let gauge = GaugeField::<Z>::random(&lat, seed);
        let b1 = QuarkField::<Z>::random(&lat, seed + 1000);
        let b2 = QuarkField::<Z>::random(&lat, seed + 2000);
        let mut combo = QuarkField::<Z>::zeros(&lat);
        for s in 0..lat.volume() {
            *combo.site_mut(s) = b1.site(s).scale(a_re) + *b2.site(s);
        }
        let d1 = device_dslash(&gauge, &b1, Strategy::ThreeLp1, IndexOrder::KMajor, 96);
        let d2 = device_dslash(&gauge, &b2, Strategy::ThreeLp1, IndexOrder::KMajor, 96);
        let dc = device_dslash(&gauge, &combo, Strategy::ThreeLp1, IndexOrder::KMajor, 96);
        for cb in 0..lat.half_volume() {
            for i in 0..3 {
                let expect = d1[cb].c[i].scale(a_re) + d2[cb].c[i];
                let got = dc[cb].c[i];
                prop_assert!(
                    (got - expect).norm_sqr().sqrt() < 1e-9,
                    "cb {cb} i {i}: {got:?} vs {expect:?}"
                );
            }
        }
    }

    /// Architectural counters depend only on the access pattern, never
    /// on the field *values*: two problems with different seeds produce
    /// identical counter sets for the same configuration.
    #[test]
    fn counters_are_value_independent(s1 in 0u64..1000, s2 in 1000u64..2000) {
        let cfg = KernelConfig::new(Strategy::ThreeLp2, IndexOrder::IMajor);
        let mut p1 = DslashProblem::<Z>::random(2, s1);
        let mut p2 = DslashProblem::<Z>::random(2, s2);
        let o1 = run_config(&mut p1, cfg, 32, &device(), QueueMode::InOrder).unwrap();
        let o2 = run_config(&mut p2, cfg, 32, &device(), QueueMode::InOrder).unwrap();
        prop_assert_eq!(o1.report.counters, o2.report.counters);
        prop_assert_eq!(o1.report.duration_us, o2.report.duration_us);
    }

    /// All strategies agree pairwise on the same random instance (the
    /// transitive closure of the per-strategy reference checks, done
    /// directly on device outputs).
    #[test]
    fn strategies_agree_pairwise(seed in 0u64..300) {
        let lat = Lattice::hypercubic(2);
        let gauge = GaugeField::<Z>::random(&lat, seed);
        let b = QuarkField::<Z>::random(&lat, seed + 7);
        let base = device_dslash(&gauge, &b, Strategy::OneLp, IndexOrder::KMajor, 8);
        for (s, o, ls) in [
            (Strategy::TwoLp, IndexOrder::KMajor, 24),
            (Strategy::ThreeLp3, IndexOrder::KMajor, 96),
            (Strategy::FourLp1, IndexOrder::IMajor, 96),
            (Strategy::FourLp2, IndexOrder::IMajor, 96),
        ] {
            let out = device_dslash(&gauge, &b, s, o, ls);
            for cb in 0..lat.half_volume() {
                for i in 0..3 {
                    prop_assert!(
                        (out[cb].c[i] - base[cb].c[i]).norm_sqr().sqrt() < 1e-9,
                        "{} vs 1LP at cb {cb}", s.name()
                    );
                }
            }
        }
    }

    /// Legal local sizes always launch; illegal ones always error.
    #[test]
    fn local_size_legality_is_sound(ls in 1u32..=1024) {
        let mut p = DslashProblem::<Z>::random(2, 5);
        let hv = p.lattice().half_volume() as u64;
        let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
        let legal = cfg.local_size_legal(ls, hv);
        let result = run_config(&mut p, cfg, ls, &device(), QueueMode::InOrder);
        if legal {
            prop_assert!(result.is_ok(), "legal {ls} failed: {result:?}");
        } else {
            // The runner enforces the paper's constraint up front: any
            // illegal size — indivisible *or* site-block-misaligned —
            // is rejected before launch (a misaligned size would make
            // the local-memory reduction read out of bounds).
            prop_assert!(result.is_err(), "illegal {ls} launched");
        }
    }
}

#[test]
fn phased_gauge_still_validates_on_device() {
    // Folding the staggered eta phases into the links (production MILC)
    // must leave every strategy's device result consistent with the CPU
    // reference on the phased field.
    let lat = Lattice::hypercubic(4);
    let gauge = milc_lattice::fold_phases(&GaugeField::<Z>::random(&lat, 60));
    let b = QuarkField::<Z>::random(&lat, 61);
    let mut p = DslashProblem::from_fields(gauge, b, Parity::Even);
    for (s, o, ls) in [
        (Strategy::ThreeLp1, IndexOrder::KMajor, 96),
        (Strategy::FourLp2, IndexOrder::LMajor, 96),
    ] {
        let out = run_config(
            &mut p,
            KernelConfig::new(s, o),
            ls,
            &device(),
            QueueMode::InOrder,
        )
        .unwrap();
        assert!(
            out.error.within_reassociation_noise(),
            "{}: {:?}",
            s.name(),
            out.error
        );
    }
}
