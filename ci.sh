#!/usr/bin/env bash
# Full quality-gate stack (DESIGN §7).  Everything runs offline against
# the vendored dependency shims.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline -q --workspace

echo "== sancheck (sanitizer gate) =="
cargo run --offline --release -p milc-bench --bin sancheck

echo "== tune (autotune smoke: cold sweep writes the cache, warm rerun is 100% hits) =="
TUNE_SMOKE_CACHE="$(mktemp -d)/tunecache.json"
cargo run --offline --release -p milc-bench --bin tune -- 4 "$TUNE_SMOKE_CACHE"
test -s "$TUNE_SMOKE_CACHE" || { echo "tune smoke did not write the cache"; exit 1; }
rm -rf "$(dirname "$TUNE_SMOKE_CACHE")"

echo "== CI OK =="
