#!/usr/bin/env bash
# Full quality-gate stack (DESIGN §7).  Everything runs offline against
# the vendored dependency shims.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline -q --workspace

echo "== sancheck (sanitizer gate) =="
cargo run --offline --release -p milc-bench --bin sancheck

echo "== CI OK =="
