#!/usr/bin/env bash
# Full quality-gate stack (DESIGN §7).  Everything runs offline against
# the vendored dependency shims.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline -q --workspace

echo "== sancheck (sanitizer gate) =="
cargo run --offline --release -p milc-bench --bin sancheck

echo "== staticcheck (static analysis gate: whole-launch proofs + traffic cross-validation) =="
cargo run --offline --release -p milc-bench --bin staticcheck
test -s results/staticcheck.md || { echo "staticcheck did not write the report"; exit 1; }

echo "== costmodel (analytic duration ranking: differential proof + golden snapshot) =="
cargo test --offline -q --release --test costmodel_diff --test costmodel_golden

echo "== static tune (measurement-free tuning: 5% regret + cold calibration differential proof, golden snapshot) =="
cargo test --offline -q --release --test static_tune_diff --test static_tune_golden

echo "== tune (autotune smoke: cold sweep writes the cache, warm rerun is 100% hits, ranked sweeps avoid >= 60% of launches, static sweeps decide launch-free) =="
TUNE_SMOKE_CACHE="$(mktemp -d)/tunecache.json"
cargo run --offline --release -p milc-bench --bin tune -- 4 "$TUNE_SMOKE_CACHE"
test -s "$TUNE_SMOKE_CACHE" || { echo "tune smoke did not write the cache"; exit 1; }
rm -rf "$(dirname "$TUNE_SMOKE_CACHE")"

echo "== tune --static (measurement-free smoke: zero launches end to end) =="
cargo run --offline --release -p milc-bench --bin tune -- 4 --static

echo "== table1 --trace (timeline + metrics artifacts) =="
cargo run --offline --release -p milc-bench --bin table1 -- 16 --trace results/table1.trace.json
test -s results/table1.trace.json || { echo "table1 did not write the trace"; exit 1; }
test -s results/metrics.txt || { echo "table1 did not write the metrics snapshot"; exit 1; }

echo "== layout_diff (shared-layout bitwise identity + bank-conflict proofs, all local-mem configs) =="
cargo test --offline -q --test layout_diff

echo "== shard_diff (sharded vs single-device bitwise identity, all Table I configs) =="
cargo test --offline -q --test shard_diff

echo "== scaling (strong-scaling study; overlapped must beat in-order at every N > 1) =="
SCALING_SMOKE_DIR="$(mktemp -d)"
cargo run --offline --release -p milc-bench --bin scaling -- 16 --check \
  --out "$SCALING_SMOKE_DIR/scaling.csv" --trace "$SCALING_SMOKE_DIR/scaling.trace.json" \
  --cache results/tunecache.json
test -s "$SCALING_SMOKE_DIR/scaling.csv" || { echo "scaling did not write the csv"; exit 1; }
test -s "$SCALING_SMOKE_DIR/scaling.trace.json" || { echo "scaling did not write the trace"; exit 1; }
rm -rf "$SCALING_SMOKE_DIR"

echo "== profile (perf-explainability: roofline table, cost-model drift, critical-path/overlap study) =="
cargo run --offline --release -p milc-bench --bin profile -- 16
test -s results/profile.md || { echo "profile did not write the report"; exit 1; }
test -s results/roofline.csv || { echo "profile did not write the roofline csv"; exit 1; }

echo "== perfdiff (perf-regression gate, threshold +10%; gates ranked-sweep and static-sweep winners, cold drift and cost-model drift; selftest proves the FAIL paths) =="
cargo run --offline --release -p milc-bench --bin perfdiff -- 16 --scaling --ranked --static-tune --profile --selftest

echo "== collecting artifacts =="
ARTIFACTS_DIR="${ARTIFACTS_DIR:-target/ci-artifacts}"
mkdir -p "$ARTIFACTS_DIR"
cp results/*.trace.json results/metrics.txt results/staticcheck.md \
  results/tune.md results/tune_ranked.csv results/tune_static.csv \
  results/profile.md results/roofline.csv \
  "$ARTIFACTS_DIR"/
echo "artifacts in $ARTIFACTS_DIR: $(ls "$ARTIFACTS_DIR" | tr '\n' ' ')"

echo "== CI OK =="
