//! CG on the *simulated device* at an autotuned local size — the
//! production shape of the paper's kernel: QUDA autotunes each kernel's
//! launch parameters once, caches the winner on disk, and every solve
//! afterwards launches at the tuned configuration without re-sweeping.
//!
//! The example runs two solves through one persistent [`Tuner`]: the
//! first pays for the Fig. 6-style sweep (a cache miss), the second
//! reuses the cached winner (a hit — zero sweep launches), exactly the
//! cold/warm behaviour the `tune` bin gates in CI.
//!
//! Run with: `cargo run --release --example tuned_solver [L] [mass]`

use gpu_sim::DeviceSpec;
use milc_complex::DoubleComplex;
use milc_dslash::solver::solve_tuned;
use milc_dslash::tune::Tuner;
use milc_lattice::{ColorVector, GaugeField, Lattice};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let l: usize = args
        .get(1)
        .map(|a| a.parse().expect("lattice size"))
        .unwrap_or(4);
    let mass: f64 = args
        .get(2)
        .map(|a| a.parse().expect("quark mass"))
        .unwrap_or(0.5);

    let lattice = Lattice::hypercubic(l);
    let device = DeviceSpec::test_small();
    println!(
        "Tuned CG solve of (m^2 - D^2) x = b on a {l}^4 lattice, m = {mass}, device `{}`",
        device.name
    );
    let gauge = GaugeField::<DoubleComplex>::random(&lattice, 2718);

    let mut rng = StdRng::seed_from_u64(314);
    let b: Vec<ColorVector<DoubleComplex>> = (0..lattice.half_volume())
        .map(|_| {
            ColorVector::new(
                DoubleComplex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                DoubleComplex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                DoubleComplex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
            )
        })
        .collect();

    // One tuner across both solves: the first misses and sweeps, the
    // second hits.  (Use `Tuner::with_cache_file(Tuner::default_path())`
    // to persist winners across *processes* the way QUDA does.)
    let mut tuner = Tuner::in_memory();

    for pass in ["cold", "warm"] {
        let t0 = std::time::Instant::now();
        let sol = solve_tuned(&gauge, &b, mass, 1e-10, 10_000, &device, &mut tuner)
            .expect("autotuning found a winner");
        let dt = t0.elapsed();
        println!("\n== {pass} solve ==");
        println!(
            "tuned local size  : {} ({})",
            sol.local_size,
            if sol.tuned_from_cache {
                "cache hit, zero sweep launches"
            } else {
                "cache miss, swept all candidates"
            }
        );
        println!("iterations        : {}", sol.solution.iterations);
        println!("Dslash launches   : {}", sol.dslash_applications);
        println!("relative residual : {:.3e}", sol.solution.relative_residual);
        println!("wall time         : {:.2} s", dt.as_secs_f64());
        assert!(sol.solution.converged, "CG failed to converge");
    }
    println!(
        "\ntuner totals      : {} hit(s), {} miss(es)",
        tuner.hits(),
        tuner.misses()
    );
    assert_eq!(tuner.hits(), 1, "warm solve must reuse the cached winner");
}
