//! QUDA comparison: the paper's Section IV-D3 study — run the QUDA-like
//! `staggered_dslash_test` baseline at all three gauge-compression
//! levels (recon 18 / 12 / 9), autotuned, and compare against the best
//! 3LP-1 configuration, reproducing the "3LP-1 beats uncompressed QUDA"
//! headline.
//!
//! Run with: `cargo run --release --example quda_compare [L]`

use gpu_sim::QueueMode;
use milc_complex::DoubleComplex;
use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, Strategy};
use quda_ref::{Recon, StaggeredDslashTest};

fn main() {
    let l: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("lattice size"))
        // L = 16 keeps the thread-per-site QUDA kernel's device fill
        // representative of the paper's L = 32 (takes about a minute).
        .unwrap_or(16);
    let ratio = (l as f64 / 32.0).powi(4);
    let device = gpu_sim::DeviceSpec::a100().scaled_for_volume_ratio(ratio);
    let equiv = 108.0 / device.num_sms as f64;
    let seed = 4242;

    println!("QUDA staggered_dslash_test vs 3LP-1 on a {l}^4 lattice\n");
    println!(
        "{:24} {:>8} {:>14} {:>10}",
        "configuration", "block", "GF/s (A100)", "validated"
    );

    for recon in [Recon::R18, Recon::R12, Recon::R9] {
        let t = StaggeredDslashTest::random(l, seed, recon);
        let out = t.run(&device).expect("quda run");
        println!(
            "{:24} {:>8} {:>14.1} {:>10}",
            format!("QUDA {}", recon.label()),
            out.local_size,
            out.gflops * equiv,
            out.error.rel < recon.tolerance(),
        );
    }

    // Best 3LP-1 k-major over its legal local sizes (default SYCL
    // out-of-order queue, like the paper's hand-written kernel).
    let mut problem = DslashProblem::<DoubleComplex>::random(l, seed);
    let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
    let hv = problem.lattice().half_volume() as u64;
    let mut best: Option<(u32, f64)> = None;
    for ls in cfg.legal_local_sizes(hv) {
        let out =
            run_config(&mut problem, cfg, ls, &device, QueueMode::OutOfOrder).expect("3LP-1 run");
        assert!(out.error.within_reassociation_noise());
        let g = out.gflops * equiv;
        if best.is_none_or(|(_, bg)| g > bg) {
            best = Some((ls, g));
        }
    }
    let (ls, gflops) = best.expect("at least one legal local size");
    println!(
        "{:24} {:>8} {:>14.1} {:>10}",
        "3LP-1 k-major (best)", ls, gflops, true
    );

    // The headline relation (Section IV-D3): 3LP-1 outperforms the
    // uncompressed QUDA baseline.
    let quda18 = StaggeredDslashTest::random(l, seed, Recon::R18)
        .run(&device)
        .expect("quda recon 18")
        .gflops
        * equiv;
    println!(
        "\n3LP-1 over QUDA recon-18: {:+.1}%  (paper: up to +10.2%)",
        100.0 * (gflops / quda18 - 1.0)
    );
}
