//! A CG solve on the simulated device with the tracing subsystem
//! switched on: installs an ambient [`Tracer`]/[`Metrics`] pair,
//! solves (m^2 - D^2) x = b at an autotuned local size, writes a
//! Perfetto-loadable Chrome trace, and prints the five hottest spans
//! by *self* time (time in the span minus time in its children) — the
//! timeline's answer to "where did the solve actually go?".
//!
//! Run with: `cargo run --release --example traced_solve [L] [mass]`
//! Open the written trace at <https://ui.perfetto.dev> (or
//! `chrome://tracing`).

use gpu_sim::DeviceSpec;
use milc_complex::DoubleComplex;
use milc_dslash::obs;
use milc_dslash::solver::solve_tuned;
use milc_dslash::tune::Tuner;
use milc_lattice::{ColorVector, GaugeField, Lattice};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let l: usize = args
        .get(1)
        .map(|a| a.parse().expect("lattice size"))
        .unwrap_or(4);
    let mass: f64 = args
        .get(2)
        .map(|a| a.parse().expect("quark mass"))
        .unwrap_or(0.5);

    let lattice = Lattice::hypercubic(l);
    let device = DeviceSpec::test_small();
    println!(
        "Traced CG solve of (m^2 - D^2) x = b on a {l}^4 lattice, m = {mass}, device `{}`",
        device.name
    );
    let gauge = GaugeField::<DoubleComplex>::random(&lattice, 2718);
    let mut rng = StdRng::seed_from_u64(314);
    let b: Vec<ColorVector<DoubleComplex>> = (0..lattice.half_volume())
        .map(|_| {
            ColorVector::new(
                DoubleComplex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                DoubleComplex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                DoubleComplex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
            )
        })
        .collect();

    // Everything below the scope guards records into `tracer`/`metrics`;
    // drop the guards and the same code runs untraced at zero cost.
    let tracer = obs::Tracer::new();
    let metrics = obs::Metrics::new();
    let sol = {
        let _t = obs::set_tracer(&tracer);
        let _m = obs::set_metrics(&metrics);
        let root = obs::span_on("solve", "traced_solve");
        root.attr("lattice_l", l as u64);
        root.attr("mass", mass);
        let mut tuner = Tuner::in_memory();
        solve_tuned(&gauge, &b, mass, 1e-10, 10_000, &device, &mut tuner)
            .expect("autotuning found a winner")
    };
    assert!(sol.solution.converged, "CG failed to converge");
    println!(
        "converged in {} iterations (residual {:.3e}, {} Dslash launches, local size {})",
        sol.solution.iterations,
        sol.solution.relative_residual,
        sol.dslash_applications,
        sol.local_size
    );

    let trace = tracer.snapshot();
    let path = "target/traced_solve.trace.json";
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write(path, obs::write_chrome(&trace)).expect("write trace");
    println!(
        "\ntrace: {} spans on {} tracks -> {path}",
        trace.spans.len(),
        trace.tracks().len()
    );

    println!("\ntop 5 spans by self time:");
    println!("{:>10}  span", "self µs");
    for (label, self_us) in trace.self_times().into_iter().take(5) {
        println!("{self_us:>10.1}  {label}");
    }

    println!(
        "\nmetrics: cg_residual = {:.3e}, launches recorded in {} series",
        metrics.gauge_value("cg_residual", &[]).unwrap_or(f64::NAN),
        metrics.series_count()
    );
}
