//! Quickstart: build a small lattice problem, run the paper's best
//! kernel (3LP-1, k-major) on the simulated A100, validate against the
//! CPU reference and print the performance summary.
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_sim::QueueMode;
use milc_complex::DoubleComplex;
use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, Strategy};

fn main() {
    // An 8^4 lattice: 4096 sites, 2048 target (even) sites.
    let l = 8;
    println!("building a random {l}^4 staggered Dslash problem ...");
    let mut problem = DslashProblem::<DoubleComplex>::random(l, 12345);

    // A device matched to the reduced volume (see DESIGN.md): occupancy
    // waves and cache pressure behave like L = 32 on the full A100.
    let ratio = (l as f64 / 32.0).powi(4);
    let device = gpu_sim::DeviceSpec::a100().scaled_for_volume_ratio(ratio);
    // Durations on the volume-matched device equal full-scale durations
    // up to SM-count rounding; the exact A100-equivalence factor is the
    // SM ratio.
    let equiv = 108.0 / device.num_sms as f64;

    // The winning configuration of the paper: 3LP-1 (local-memory
    // reduction, no atomics), k-major work-item order.
    let cfg = KernelConfig::new(Strategy::ThreeLp1, IndexOrder::KMajor);
    let local_size = 96;
    println!(
        "launching {} at local size {local_size} on {} ...",
        cfg.label(),
        device.name
    );
    let out = run_config(
        &mut problem,
        cfg,
        local_size,
        &device,
        QueueMode::OutOfOrder,
    )
    .expect("launch failed");

    println!("\n== results ==");
    println!("kernel duration        : {:9.1} µs", out.report.duration_us);
    println!("queue overhead         : {:9.1} µs", out.queue_overhead_us);
    println!(
        "performance            : {:9.1} GFLOP/s (A100-equivalent {:.1})",
        out.gflops,
        out.gflops * equiv
    );
    println!(
        "achieved occupancy     : {:9.1} %",
        100.0 * out.report.occupancy.achieved
    );
    println!(
        "L1 miss rate           : {:9.1} %",
        out.report.counters.l1_miss_rate_pct()
    );
    println!("max error vs reference : {:9.2e} (relative)", out.error.rel);
    assert!(
        out.error.within_reassociation_noise(),
        "device result diverged from the CPU reference!"
    );
    println!("\nvalidated: device output matches the CPU reference.");
}
