//! Conjugate-gradient solve of the staggered normal equation — the job
//! the Dslash kernel exists for.  MILC's production application
//! (`su3_rhmd_hisq`, Section I of the paper) spends its time solving
//! `(m^2 - D^2) x = b` with CG; this example does exactly that with the
//! rayon-parallel CPU Dslash.
//!
//! Run with: `cargo run --release --example cg_solver [L] [mass]`

use milc_complex::DoubleComplex;
use milc_dslash::solver::{solve, NormalOperator};
use milc_lattice::{ColorVector, GaugeField, Lattice};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let l: usize = args
        .get(1)
        .map(|a| a.parse().expect("lattice size"))
        .unwrap_or(8);
    let mass: f64 = args
        .get(2)
        .map(|a| a.parse().expect("quark mass"))
        .unwrap_or(0.25);

    let lattice = Lattice::hypercubic(l);
    println!(
        "CG solve of (m^2 - D^2) x = b on a {l}^4 lattice, m = {mass} ({} unknowns x 3 colors)",
        lattice.half_volume()
    );
    let gauge = GaugeField::<DoubleComplex>::random(&lattice, 2718);

    // A random source on the even checkerboard.
    let mut rng = StdRng::seed_from_u64(314);
    let b: Vec<ColorVector<DoubleComplex>> = (0..lattice.half_volume())
        .map(|_| {
            ColorVector::new(
                DoubleComplex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                DoubleComplex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                DoubleComplex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
            )
        })
        .collect();

    let t0 = std::time::Instant::now();
    let sol = solve(&gauge, &b, mass, 1e-10, 10_000);
    let dt = t0.elapsed();

    println!("\n== CG summary ==");
    println!("iterations        : {}", sol.iterations);
    println!("relative residual : {:.3e}", sol.relative_residual);
    println!("converged         : {}", sol.converged);
    println!(
        "wall time         : {:.2} s ({:.2} ms/iteration, 2 Dslash applications each)",
        dt.as_secs_f64(),
        dt.as_secs_f64() * 1e3 / sol.iterations.max(1) as f64
    );

    // Double-check by applying the operator to the solution directly.
    let mut op = NormalOperator::new(&gauge, mass);
    let mut ax = vec![ColorVector::zero(); b.len()];
    op.apply(&sol.x, &mut ax);
    let err: f64 = b
        .iter()
        .zip(&ax)
        .map(|(bb, aa)| (*bb - *aa).norm_sqr())
        .sum::<f64>()
        .sqrt();
    println!("||b - A x||       : {err:.3e}");
    assert!(sol.converged, "CG failed to converge");
}
