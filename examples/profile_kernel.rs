//! Kernel profiler: run one configuration and print the Nsight-Compute-
//! style report (the paper's Table I rows) for it — compare strategies
//! the way Section IV-D does.
//!
//! Run with:
//! `cargo run --release --example profile_kernel [strategy] [order] [local]`
//! e.g. `... profile_kernel 3LP-1 k-major 96` or `... profile_kernel 4LP-2 i-major 96`.

use gpu_sim::{ProfileReport, QueueMode, TimeBreakdown, TimingModel};
use milc_complex::DoubleComplex;
use milc_dslash::{run_config, DslashProblem, IndexOrder, KernelConfig, Strategy};

fn parse_strategy(s: &str) -> Strategy {
    match s {
        "1LP" => Strategy::OneLp,
        "2LP" => Strategy::TwoLp,
        "3LP-1" => Strategy::ThreeLp1,
        "3LP-2" => Strategy::ThreeLp2,
        "3LP-3" => Strategy::ThreeLp3,
        "4LP-1" => Strategy::FourLp1,
        "4LP-2" => Strategy::FourLp2,
        other => panic!("unknown strategy '{other}' (use 1LP, 2LP, 3LP-1..3, 4LP-1, 4LP-2)"),
    }
}

fn parse_order(s: &str) -> IndexOrder {
    match s {
        "k-major" | "k" => IndexOrder::KMajor,
        "i-major" | "i" => IndexOrder::IMajor,
        "l-major" | "l" => IndexOrder::LMajor,
        other => panic!("unknown order '{other}' (use k-major, i-major, l-major)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let strategy = parse_strategy(args.get(1).map(String::as_str).unwrap_or("3LP-1"));
    let order = parse_order(args.get(2).map(String::as_str).unwrap_or("k-major"));
    let local: u32 = args
        .get(3)
        .map(|a| a.parse().expect("local size must be an integer"))
        .unwrap_or(96);

    let l = 8;
    let ratio = (l as f64 / 32.0).powi(4);
    let device = gpu_sim::DeviceSpec::a100().scaled_for_volume_ratio(ratio);
    let equiv = 108.0 / device.num_sms as f64;
    let mut problem = DslashProblem::<DoubleComplex>::random(l, 7);
    let cfg = KernelConfig::new(strategy, order);
    let hv = problem.lattice().half_volume() as u64;
    if !cfg.local_size_legal(local, hv) {
        eprintln!(
            "local size {local} violates the {} constraint (must be a multiple of {} and divide the global size {}); legal sizes: {:?}",
            cfg.label(),
            strategy.local_size_multiple(order),
            cfg.global_size(hv),
            cfg.legal_local_sizes(hv)
        );
        std::process::exit(2);
    }

    let out = run_config(&mut problem, cfg, local, &device, QueueMode::OutOfOrder)
        .expect("launch failed");
    let profile = ProfileReport::from_launch(
        format!("{} @ {local} (L = {l})", cfg.label()),
        &out.report,
        &device,
    );
    println!("{}", profile.render());
    let breakdown = TimeBreakdown::new(&TimingModel::calibrated(), &out.report.counters);
    println!("{}", breakdown.render());
    println!(
        "A100-equivalent: {:.1} GFLOP/s; validated: {}",
        out.gflops * equiv,
        out.error.within_reassociation_noise()
    );
}
