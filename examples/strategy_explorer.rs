//! Strategy explorer: a miniature Fig. 6 — sweep every parallel
//! strategy, index order and legal local size on a small lattice and
//! print the performance table.
//!
//! Run with: `cargo run --release --example strategy_explorer [L]`
//! (default L = 8; L = 16 reproduces the shipped results/fig6.csv scale).

use gpu_sim::QueueMode;
use milc_complex::DoubleComplex;
use milc_dslash::{run_config, DslashProblem, KernelConfig, Strategy};

fn main() {
    let l: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("lattice size must be an integer"))
        .unwrap_or(8);
    let ratio = (l as f64 / 32.0).powi(4);
    let device = gpu_sim::DeviceSpec::a100().scaled_for_volume_ratio(ratio);
    let equiv = 108.0 / device.num_sms as f64;
    println!("sweeping strategies on a {l}^4 lattice ({})\n", device.name);

    let mut problem = DslashProblem::<DoubleComplex>::random(l, 99);
    let hv = problem.lattice().half_volume() as u64;

    println!(
        "{:8} {:8} {:>6} {:>12} {:>12} {:>7} {:>6}",
        "strategy", "order", "local", "duration µs", "GF/s (A100)", "occ %", "ok"
    );
    for strategy in Strategy::ALL {
        for &order in strategy.orders() {
            let cfg = KernelConfig::new(strategy, order);
            for ls in cfg.legal_local_sizes(hv) {
                let out = run_config(&mut problem, cfg, ls, &device, QueueMode::OutOfOrder)
                    .expect("legal configuration");
                println!(
                    "{:8} {:8} {:>6} {:>12.1} {:>12.1} {:>7.1} {:>6}",
                    strategy.name(),
                    order.name(),
                    ls,
                    out.report.duration_us,
                    out.gflops * equiv,
                    100.0 * out.report.occupancy.achieved,
                    out.error.within_reassociation_noise(),
                );
            }
        }
        println!();
    }
    println!("(GF/s column is A100-equivalent: scaled by the SM ratio)");
}
